//! Exact rational arithmetic and small dense linear algebra over ℚ.
//!
//! The Sheu–Tai partitioning method projects integer iteration points onto
//! the zero-hyperplane of a time transformation Π. Projected coordinates are
//! rational (e.g. the projected points of the paper's Example 1 include
//! (−3/2, 3/2)), and the grouping phase needs *exact* answers to questions
//! such as "what is the least positive integer r with r·d^p ∈ ℤⁿ?" and
//! "are these projected dependence vectors linearly independent?".
//! Floating point cannot answer those questions reliably, so this crate
//! provides a compact, overflow-checked implementation of
//!
//! * [`Ratio`] — a normalized fraction of two `i64`s with `i128`-widened
//!   intermediate arithmetic,
//! * [`QVec`] — a rational vector with the projection / lattice helpers the
//!   partitioner needs,
//! * [`QMat`] — a dense rational matrix with Gaussian elimination, rank,
//!   solving, and nullspace extraction.
//!
//! Everything here is deterministic. The default entry points panic on
//! arithmetic overflow (beyond ±2⁶³-scale numerators) — for pipeline
//! internals that is an invariant violation, not a user error — while
//! the `try_*`/`checked_*` variants return [`NumericError`] instead,
//! for call sites fed directly by user-supplied loop nests (dependence
//! extraction, code generation).

#![deny(missing_docs)]

pub mod int;
pub mod intlinalg;
pub mod linalg;
pub mod matrix;
pub mod ratio;
pub mod vector;

pub use matrix::QMat;
pub use ratio::Ratio;
pub use vector::{IVec, QVec};

/// A numeric failure from a `try_*`/`checked_*` entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumericError {
    /// An intermediate or final value does not fit in `i64`.
    Overflow {
        /// The operation that overflowed.
        context: &'static str,
    },
    /// A rational was constructed with denominator zero.
    ZeroDenominator,
}

impl std::fmt::Display for NumericError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericError::Overflow { context } => {
                write!(f, "integer overflow during {context}")
            }
            NumericError::ZeroDenominator => write!(f, "zero denominator"),
        }
    }
}

impl std::error::Error for NumericError {}
