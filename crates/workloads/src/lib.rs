//! The paper's workload loop nests, as [`loom_loopir::LoopNest`]
//! generators.
//!
//! §I of the paper motivates the grouping approach with algorithms whose
//! index sets *cannot* be partitioned into independent blocks: matrix
//! multiplication, discrete Fourier transform, convolution, and
//! transitive closure; §II uses the 2-deep loop L1 as the running
//! example and §IV evaluates on matrix–vector multiplication. Every one
//! of those is generated here (plus an SOR stencil), each with its
//! documented dependence set, so examples, tests, and benches all pull
//! workloads from one place.

#![deny(missing_docs)]

pub mod conv;
pub mod conv2d;
pub mod dft;
pub mod heat2d;
pub mod l1;
pub mod matmul;
pub mod matvec;
pub mod sor;
pub mod transitive;
pub mod triangular;

use loom_loopir::{DepOptions, LoopNest, Point};

/// A workload: a nest plus the dependence set the paper associates
/// with it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The loop nest.
    pub nest: LoopNest,
    /// The dependence vectors the paper's model assigns this nest
    /// (verified against [`loom_loopir::extract_dependences`] in tests).
    pub deps: Vec<Point>,
    /// The canonical wavefront time function used by the paper for this
    /// nest.
    pub pi: Vec<i64>,
}

impl Workload {
    /// Extract the dependence set from the nest and confirm it matches
    /// the documented one. Panics on mismatch (programming error in the
    /// generator).
    pub fn verified_deps(&self) -> Vec<Point> {
        let extracted = loom_loopir::deps::dependence_vectors(&self.nest, DepOptions::default())
            .expect("workload nests are uniform by construction");
        assert_eq!(
            extracted,
            self.deps,
            "workload `{}`: documented deps diverge from extraction",
            self.nest.name()
        );
        extracted
    }

    /// `true` iff the documented time function Π is legal for the
    /// documented dependence set.
    pub fn pi_is_legal(&self) -> bool {
        loom_hyperplane::TimeFn::new(self.pi.clone()).is_legal_for(&self.deps)
    }

    /// The documented time function as a [`loom_hyperplane::TimeFn`].
    pub fn time_fn(&self) -> loom_hyperplane::TimeFn {
        loom_hyperplane::TimeFn::new(self.pi.clone())
    }
}

/// Every workload generator at its paper-scale default, for sweep-style
/// tests and benches.
pub fn all_default() -> Vec<Workload> {
    vec![
        l1::workload(4),
        matmul::workload(4),
        matvec::workload(8),
        conv::workload(8, 4),
        sor::workload(6, 6),
        transitive::workload(4),
        dft::workload(8),
        conv2d::workload(4, 2),
        triangular::workload(6),
        heat2d::workload(3, 4),
    ]
}
