//! The paper's running example, loop (L1).

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// Loop (L1) of the paper on an `extent × extent` index set:
///
/// ```text
/// for i = 0 to extent-1
///   for j = 0 to extent-1
///     S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
///     S2: B[i+1,j]   := A[i,j] * 2 + C;
/// ```
///
/// Dependences: `d₁ = (0,1)` and `d₂ = (1,1)` through `A`,
/// `d₃ = (1,0)` through `B`. The paper uses `extent = 4` and `Π = (1,1)`.
pub fn workload(extent: i64) -> Workload {
    let nest = LoopNest::new(
        "L1",
        IterSpace::rect(&[extent, extent]).expect("positive extent"),
        vec![
            Stmt::assign(
                Access::simple("A", 2, &[(0, 1), (1, 1)]),
                vec![
                    Access::simple("A", 2, &[(0, 1), (1, 0)]),
                    Access::simple("B", 2, &[(0, 0), (1, 0)]),
                ],
            )
            .with_expr(Expr::add(Expr::Read(0), Expr::Read(1))),
            Stmt::assign(
                Access::simple("B", 2, &[(0, 1), (1, 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )
            .with_expr(Expr::add(
                Expr::mul(Expr::Read(0), Expr::Const(2.0)),
                Expr::Const(1.0), // the paper's scalar constant C
            )),
        ],
    )
    .expect("L1 is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 1], vec![1, 0], vec![1, 1]],
        pi: vec![1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(4).verified_deps();
    }

    #[test]
    fn paper_size() {
        let w = workload(4);
        assert_eq!(w.nest.space().count(), 16);
        assert_eq!(w.nest.stmts().len(), 2);
        assert_eq!(w.pi, vec![1, 1]);
    }

    #[test]
    fn scales() {
        assert_eq!(workload(10).nest.space().count(), 100);
    }
}
