//! Property-based integration tests: random uniform dependence sets and
//! spaces must always yield partitionings that satisfy the paper's laws,
//! and mappings/simulations that conserve work. Randomness comes from a
//! seeded [`SplitMix64`] so every run checks the same cases.

use loom_hyperplane::{find_optimal, SearchConfig, TimeFn};
use loom_loopir::IterSpace;
use loom_machine::{simulate, MachineParams, Program, SimConfig, Topology};
use loom_mapping::{baseline, map_partitioning};
use loom_obs::SplitMix64;
use loom_partition::comm::comm_stats;
use loom_partition::{laws, partition, PartitionConfig};
use std::collections::BTreeSet;

/// Random 2-D dependence sets with strictly positive wavefront sums, so
/// Π = (1,1) is always legal and partitioning always applies.
fn dep_set_2d(rng: &mut SplitMix64) -> Vec<Vec<i64>> {
    loop {
        let n = 1 + rng.below(3) as usize;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert((rng.range_i64(0, 3), rng.range_i64(-2, 3)));
        }
        let deps: Vec<Vec<i64>> = set
            .into_iter()
            .filter(|&(a, b)| a + b > 0 && (a, b) > (0, 0))
            .map(|(a, b)| vec![a, b])
            .collect();
        if !deps.is_empty() {
            return deps;
        }
    }
}

/// 64 random `(deps, rows, cols)` cases per seed.
fn for_random_cases(seed: u64, mut check: impl FnMut(&mut SplitMix64, Vec<Vec<i64>>, i64, i64)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..64 {
        let deps = dep_set_2d(&mut rng);
        let rows = rng.range_i64(3, 8);
        let cols = rng.range_i64(3, 8);
        check(&mut rng, deps, rows, cols);
    }
}

#[test]
fn partitioning_always_lawful() {
    for_random_cases(1, |_, deps, rows, cols| {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let p = partition(
            space,
            deps.clone(),
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        // Disjoint cover.
        let covered: usize = p.blocks().iter().map(Vec::len).sum();
        assert_eq!(covered, (rows * cols) as usize, "{deps:?}");
        // All laws hold.
        let violations = laws::check_all(&p);
        assert!(
            violations.is_empty(),
            "{deps:?}: violations: {violations:?}"
        );
    });
}

#[test]
fn interblock_never_exceeds_total() {
    for_random_cases(2, |_, deps, rows, cols| {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let p = partition(
            space,
            deps.clone(),
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        let stats = comm_stats(&p);
        assert!(stats.interblock_arcs <= stats.total_arcs, "{deps:?}");
    });
}

#[test]
fn searched_pi_is_legal_and_minimal_among_wavefronts() {
    for_random_cases(3, |_, deps, rows, cols| {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let pi = find_optimal(&deps, &space, SearchConfig::default()).unwrap();
        assert!(pi.is_legal_for(&deps), "{deps:?}");
        // Never worse than the plain wavefront, which is legal for this
        // strategy by construction.
        let wf = TimeFn::new(vec![1, 1]);
        assert!(pi.steps(&space) <= wf.steps(&space), "{deps:?}");
    });
}

#[test]
fn simulation_conserves_work_on_any_mapping() {
    for_random_cases(4, |rng, deps, rows, cols| {
        let (rows, cols) = (rows.min(6), cols.min(6));
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let p = partition(
            space,
            deps.clone(),
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        let n_procs = 2usize;
        let seed = rng.below(32);
        let assignment = baseline::random(p.num_blocks(), n_procs, seed);
        let prog = Program::from_partitioning(&p, &assignment, n_procs, 2);
        let sim = simulate(
            &prog,
            &SimConfig {
                params: MachineParams::low_latency(),
                topology: Topology::Hypercube(1),
                words_per_arc: 1,
                batch_messages: false,
                link_contention: false,
                record_trace: false,
                collect_metrics: false,
            },
        )
        .unwrap();
        let total: u64 = sim.compute.iter().sum();
        assert_eq!(total, (rows * cols) as u64 * 2, "{deps:?}");
        // Makespan at least the serial work divided by processors.
        assert!(sim.makespan >= total / n_procs as u64, "{deps:?}");
        assert_eq!(sim.messages as usize, prog.remote_arcs(), "{deps:?}");
    });
}

#[test]
fn gray_mapping_never_unbalances_by_more_than_one_cluster() {
    for m in 8i64..24 {
        let w = loom_workloads::matvec::workload(m);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let cube_dim = 2usize;
        if p.num_blocks() < 1 << cube_dim {
            continue;
        }
        let mapping = map_partitioning(&p, cube_dim).unwrap();
        let per = mapping.blocks_per_proc();
        let min = per.iter().map(Vec::len).min().unwrap();
        let max = per.iter().map(Vec::len).max().unwrap();
        assert!(
            max - min <= 1,
            "m={m}: cluster sizes {:?}",
            per.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }
}
