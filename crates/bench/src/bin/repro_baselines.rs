//! A3 — baseline crossover: independent partitioning (GCD / lattice)
//! vs the Sheu–Tai grouping method.
//!
//! §I's claim: on matmul, DFT, convolution, and transitive closure the
//! independent methods find no parallelism at all, while the grouping
//! method extracts blocks at the cost of bounded communication. On loops
//! whose dependence lattice is coarse, the independent methods win
//! (zero communication).

use loom_baselines::{gcd, lattice, serial};
use loom_bench::partition_workload;
use loom_core::report::Table;
use loom_partition::comm::comm_stats;
use loom_partition::ComputationalStructure;

fn main() {
    println!("A3 — independent partitioning vs Sheu–Tai grouping\n");
    let workloads = vec![
        loom_workloads::matmul::workload(4),
        loom_workloads::dft::workload(8),
        loom_workloads::conv::workload(8, 4),
        loom_workloads::transitive::workload(4),
        loom_workloads::matvec::workload(8),
        loom_workloads::sor::workload(8, 8),
    ];

    let mut t = Table::new([
        "workload",
        "gcd blocks",
        "lattice blocks",
        "sheu-tai blocks",
        "s-t interblock arcs",
    ]);
    for w in &workloads {
        let cs = ComputationalStructure::new(w.nest.space().clone(), w.verified_deps())
            .expect("non-empty");
        let g = gcd::partition(&cs);
        let l = lattice::partition(&cs);
        // Independent methods must never cross a dependence.
        assert_eq!(g.interblock_arcs(&cs), 0, "{}", w.nest.name());
        assert_eq!(l.interblock_arcs(&cs), 0, "{}", w.nest.name());
        let st = partition_workload(w);
        let stats = comm_stats(&st);
        t.row([
            w.nest.name().to_string(),
            format!("{}", g.num_blocks()),
            format!("{}", l.num_blocks()),
            format!("{}", st.num_blocks()),
            format!("{}", stats.interblock_arcs),
        ]);
        // §I: these algorithms "will execute sequentially by their methods".
        assert!(g.is_sequential(), "{} should defeat GCD", w.nest.name());
        assert!(l.is_sequential(), "{} should defeat lattice", w.nest.name());
        assert!(st.num_blocks() > 1, "{} should parallelize", w.nest.name());
    }
    println!("{t}");

    // Strip partitioning (King & Ni-style block distribution) gets
    // bounded communication too — but it serializes schedule-parallel
    // work, which Algorithm 1's projection provably never does
    // (Theorem 1). Compare the schedule stretch.
    println!("strip vs projection blocks on sor 16×16 (Π = (1,1)):\n");
    use loom_baselines::strip;
    use loom_hyperplane::TimeFn as TF;
    let w = loom_workloads::sor::workload(16, 16);
    let cs2 = ComputationalStructure::new(w.nest.space().clone(), w.verified_deps()).unwrap();
    let pi = TF::new(w.pi.clone());
    let mut t = Table::new(["method", "blocks", "interblock arcs", "schedule stretch"]);
    for width in [2i64, 4, 8] {
        let r = strip::partition(&cs2, 0, width);
        t.row([
            format!("strip w={width}"),
            format!("{}", r.num_blocks()),
            format!("{}", r.interblock_arcs(&cs2)),
            format!("{}", strip::schedule_stretch(&r, &cs2, &pi)),
        ]);
    }
    let st = partition_workload(&w);
    let st_result = loom_baselines::BaselineResult {
        method: "sheu-tai",
        blocks: st.blocks().to_vec(),
        block_of: (0..cs2.len()).map(|id| st.block_of(id)).collect(),
    };
    t.row([
        "sheu-tai (Alg. 1)".to_string(),
        format!("{}", st.num_blocks()),
        format!("{}", comm_stats(&st).interblock_arcs),
        format!("{}", strip::schedule_stretch(&st_result, &cs2, &pi)),
    ]);
    println!("{t}");
    assert_eq!(strip::schedule_stretch(&st_result, &cs2, &pi), 1);
    println!();

    // A loop the independent methods *can* split: strided stencil.
    println!("counter-example where independent partitioning wins:");
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    let space = IterSpace::rect(&[8, 8]).unwrap();
    let deps = vec![vec![2, 0], vec![0, 2]];
    let cs = ComputationalStructure::new(space.clone(), deps.clone()).unwrap();
    let g = gcd::partition(&cs);
    let st = loom_partition::partition(
        space,
        deps,
        TimeFn::new(vec![1, 1]),
        &loom_partition::PartitionConfig::default(),
    )
    .unwrap();
    println!(
        "  stride-2 stencil: gcd finds {} independent blocks (0 communication);",
        g.num_blocks()
    );
    println!(
        "  sheu-tai finds {} blocks with {} interblock arcs",
        st.num_blocks(),
        comm_stats(&st).interblock_arcs
    );
    assert_eq!(g.num_blocks(), 4);
    let one = serial::one_block(&cs);
    assert!(one.is_sequential());
}
