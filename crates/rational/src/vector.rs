//! Rational and integer vectors with the projection helpers the
//! partitioner is built on.

use crate::int::lcm;
use crate::ratio::Ratio;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// An integer vector — iteration-space points and dependence vectors.
pub type IVec = Vec<i64>;

/// A dense vector of exact rationals.
///
/// Projected points and projected dependence vectors live in ℚⁿ, so all the
/// geometric work of the partitioning phase happens on `QVec`s.
///
/// ```
/// use loom_rational::{QVec, Ratio};
/// let pi = QVec::from_ints(&[1, 1]);
/// let j = QVec::from_ints(&[3, 0]);
/// // Projection of (3,0) with respect to (1,1) → (3/2, -3/2).
/// let p = j.project(&pi);
/// assert_eq!(p, QVec::new(vec![Ratio::new(3, 2), Ratio::new(-3, 2)]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QVec(Vec<Ratio>);

impl QVec {
    /// Wrap a vector of rationals.
    pub fn new(coords: Vec<Ratio>) -> QVec {
        QVec(coords)
    }

    /// A rational vector from integer coordinates.
    pub fn from_ints(coords: &[i64]) -> QVec {
        QVec(coords.iter().map(|&c| Ratio::int(c)).collect())
    }

    /// The zero vector of dimension `n`.
    pub fn zero(n: usize) -> QVec {
        QVec(vec![Ratio::ZERO; n])
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinate slice.
    pub fn coords(&self) -> &[Ratio] {
        &self.0
    }

    /// `true` iff every coordinate is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|c| c.is_zero())
    }

    /// `true` iff every coordinate is an integer.
    pub fn is_integral(&self) -> bool {
        self.0.iter().all(|c| c.is_integer())
    }

    /// The integer coordinates, if all coordinates are integers.
    pub fn to_ints(&self) -> Option<IVec> {
        self.0.iter().map(|c| c.to_integer()).collect()
    }

    /// Exact dot product.
    pub fn dot(&self, other: &QVec) -> Ratio {
        assert_eq!(self.dim(), other.dim(), "dot of mismatched dimensions");
        self.0
            .iter()
            .zip(&other.0)
            .fold(Ratio::ZERO, |acc, (&a, &b)| acc + a * b)
    }

    /// Scale by a rational.
    pub fn scale(&self, k: Ratio) -> QVec {
        QVec(self.0.iter().map(|&c| c * k).collect())
    }

    /// Projection of `self` onto the hyperplane `p·x = 0`
    /// (Definition 3 of the paper): `self − (self·p / p·p) p`.
    ///
    /// Panics if `p` is the zero vector.
    pub fn project(&self, p: &QVec) -> QVec {
        let pp = p.dot(p);
        assert!(!pp.is_zero(), "projection along the zero vector");
        let k = self.dot(p) / pp;
        self.clone() - p.scale(k)
    }

    /// The least positive integer `r` with `r * self ∈ ℤⁿ`
    /// (the `r_i` of Algorithm 1 Step 1). This is the LCM of the
    /// coordinate denominators. Returns 1 for an integral vector
    /// (including zero).
    pub fn least_integer_multiplier(&self) -> i64 {
        self.0.iter().fold(1, |l, c| lcm(l, c.den()))
    }

    /// `true` iff `other = k * self` for some rational `k > 0`.
    pub fn positively_parallel(&self, other: &QVec) -> bool {
        if self.is_zero() || other.is_zero() {
            return false;
        }
        let mut k: Option<Ratio> = None;
        for (&a, &b) in self.0.iter().zip(&other.0) {
            match (a.is_zero(), b.is_zero()) {
                (true, true) => continue,
                (true, false) | (false, true) => return false,
                (false, false) => {
                    let q = b / a;
                    if q.signum() <= 0 {
                        return false;
                    }
                    match k {
                        None => k = Some(q),
                        Some(prev) if prev != q => return false,
                        _ => {}
                    }
                }
            }
        }
        k.is_some()
    }

    /// Lossy floating-point view for display or plotting only.
    pub fn to_f64s(&self) -> Vec<f64> {
        self.0.iter().map(|c| c.to_f64()).collect()
    }
}

impl Index<usize> for QVec {
    type Output = Ratio;
    fn index(&self, i: usize) -> &Ratio {
        &self.0[i]
    }
}

impl IndexMut<usize> for QVec {
    fn index_mut(&mut self, i: usize) -> &mut Ratio {
        &mut self.0[i]
    }
}

impl Add for QVec {
    type Output = QVec;
    fn add(self, rhs: QVec) -> QVec {
        &self + &rhs
    }
}

impl Add for &QVec {
    type Output = QVec;
    fn add(self, rhs: &QVec) -> QVec {
        assert_eq!(self.dim(), rhs.dim(), "add of mismatched dimensions");
        QVec(self.0.iter().zip(&rhs.0).map(|(&a, &b)| a + b).collect())
    }
}

impl Sub for QVec {
    type Output = QVec;
    fn sub(self, rhs: QVec) -> QVec {
        &self - &rhs
    }
}

impl Sub for &QVec {
    type Output = QVec;
    fn sub(self, rhs: &QVec) -> QVec {
        assert_eq!(self.dim(), rhs.dim(), "sub of mismatched dimensions");
        QVec(self.0.iter().zip(&rhs.0).map(|(&a, &b)| a - b).collect())
    }
}

impl Neg for QVec {
    type Output = QVec;
    fn neg(self) -> QVec {
        QVec(self.0.into_iter().map(|c| -c).collect())
    }
}

impl Mul<Ratio> for &QVec {
    type Output = QVec;
    fn mul(self, k: Ratio) -> QVec {
        self.scale(k)
    }
}

impl fmt::Debug for QVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for QVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_obs::SplitMix64;

    #[test]
    fn paper_example1_projection() {
        // Loop L1, Π = (1,1): index point (3,0) projects to (3/2, −3/2).
        let pi = QVec::from_ints(&[1, 1]);
        let p = QVec::from_ints(&[3, 0]).project(&pi);
        assert_eq!(p, QVec::new(vec![Ratio::new(3, 2), Ratio::new(-3, 2)]));
        // Projected point lies on the zero-hyperplane.
        assert!(p.dot(&pi).is_zero());
    }

    #[test]
    fn paper_example2_projected_dependences() {
        // Matmul, Π = (1,1,1): d_A = (0,1,0) projects to (−1/3, 2/3, −1/3).
        let pi = QVec::from_ints(&[1, 1, 1]);
        let da = QVec::from_ints(&[0, 1, 0]).project(&pi);
        assert_eq!(
            da,
            QVec::new(vec![Ratio::new(-1, 3), Ratio::new(2, 3), Ratio::new(-1, 3)])
        );
        assert_eq!(da.least_integer_multiplier(), 3);
    }

    #[test]
    fn least_integer_multiplier_cases() {
        assert_eq!(QVec::from_ints(&[1, -2, 0]).least_integer_multiplier(), 1);
        assert_eq!(QVec::zero(3).least_integer_multiplier(), 1);
        let v = QVec::new(vec![Ratio::new(1, 2), Ratio::new(1, 3)]);
        assert_eq!(v.least_integer_multiplier(), 6);
        assert!(v.scale(Ratio::int(6)).is_integral());
        assert!(!v.scale(Ratio::int(3)).is_integral());
    }

    #[test]
    fn positively_parallel_cases() {
        let a = QVec::from_ints(&[1, -2]);
        assert!(a.positively_parallel(&QVec::new(vec![Ratio::new(1, 2), Ratio::int(-1)])));
        assert!(!a.positively_parallel(&QVec::from_ints(&[-1, 2]))); // opposite
        assert!(!a.positively_parallel(&QVec::from_ints(&[1, 2]))); // not parallel
        assert!(!a.positively_parallel(&QVec::zero(2)));
        assert!(!QVec::zero(2).positively_parallel(&a));
        let withzero = QVec::from_ints(&[0, 3]);
        assert!(withzero.positively_parallel(&QVec::from_ints(&[0, 1])));
        assert!(!withzero.positively_parallel(&QVec::from_ints(&[1, 1])));
    }

    #[test]
    fn arithmetic_and_indexing() {
        let a = QVec::from_ints(&[1, 2]);
        let b = QVec::from_ints(&[3, -1]);
        assert_eq!(&a + &b, QVec::from_ints(&[4, 1]));
        assert_eq!(&a - &b, QVec::from_ints(&[-2, 3]));
        assert_eq!(-a.clone(), QVec::from_ints(&[-1, -2]));
        assert_eq!(a.dot(&b), Ratio::int(1));
        assert_eq!(a[1], Ratio::int(2));
        let mut c = a.clone();
        c[0] = Ratio::new(1, 2);
        assert!(!c.is_integral());
        assert_eq!(a.to_ints(), Some(vec![1, 2]));
        assert_eq!(c.to_ints(), None);
    }

    #[test]
    fn display_format() {
        let v = QVec::new(vec![Ratio::new(-1, 3), Ratio::int(2)]);
        assert_eq!(v.to_string(), "(-1/3, 2)");
    }

    /// Deterministic property harness: random small integer 3-vectors,
    /// with a non-zero projection direction.
    fn for_random_vecs(seed: u64, check: impl Fn(QVec, QVec, QVec)) {
        let mut rng = SplitMix64::new(seed);
        let small_ivec = |rng: &mut SplitMix64| {
            QVec::from_ints(&[
                rng.range_i64(-20, 20),
                rng.range_i64(-20, 20),
                rng.range_i64(-20, 20),
            ])
        };
        for _ in 0..256 {
            let a = small_ivec(&mut rng);
            let b = small_ivec(&mut rng);
            let p = loop {
                let p = small_ivec(&mut rng);
                if !p.is_zero() {
                    break p;
                }
            };
            check(a, b, p);
        }
    }

    #[test]
    fn projection_lands_on_zero_hyperplane() {
        for_random_vecs(1, |j, _, p| {
            assert!(j.project(&p).dot(&p).is_zero(), "{j} onto {p}");
        });
    }

    #[test]
    fn projection_is_idempotent() {
        for_random_vecs(2, |j, _, p| {
            let once = j.project(&p);
            assert_eq!(once.project(&p), once, "{j} onto {p}");
        });
    }

    #[test]
    fn projection_is_linear() {
        for_random_vecs(3, |a, b, p| {
            let lhs = (&a + &b).project(&p);
            let rhs = &a.project(&p) + &b.project(&p);
            assert_eq!(lhs, rhs, "{a} {b} onto {p}");
        });
    }

    #[test]
    fn lim_scales_to_integral() {
        for_random_vecs(4, |j, _, p| {
            let v = j.project(&p);
            let r = v.least_integer_multiplier();
            assert!(r >= 1);
            assert!(v.scale(Ratio::int(r)).is_integral(), "{j} onto {p}");
            // Minimality: no smaller positive multiplier works.
            for s in 1..r {
                assert!(!v.scale(Ratio::int(s)).is_integral(), "{j} onto {p}, s={s}");
            }
        });
    }
}
