//! Spans, counters, and the recorder that collects them.
//!
//! A [`Recorder`] is either *enabled* (it owns shared storage) or
//! *disabled* (it owns nothing). Every operation on the disabled
//! recorder is a single `Option` check, so instrumentation can stay
//! compiled into hot paths — `loom_core::pipeline` always calls through
//! a recorder and the default one is disabled.

use crate::flight::FlightRecorder;
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span: a named wall-clock interval, in microseconds
/// relative to the recorder's creation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"pipeline.partition"`).
    pub name: String,
    /// Start time, µs since the recorder's epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    flight: FlightRecorder,
}

/// Collects [`Span`]s and [`Counter`]s. Cloning shares the underlying
/// store, so a recorder can be handed down through pipeline stages.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Recorder(disabled)"),
            Some(inner) => write!(
                f,
                "Recorder({} spans, {} counters)",
                inner.spans.lock().unwrap().len(),
                inner.counters.lock().unwrap().len()
            ),
        }
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder that records nothing, at near-zero cost.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder; its epoch (span time zero) is the moment of
    /// this call.
    pub fn enabled() -> Recorder {
        Recorder::enabled_with_flight(FlightRecorder::disabled())
    }

    /// A live recorder that additionally mirrors every finished span
    /// into `flight` as a `span` event, and hands the flight recorder
    /// out to instrumented components via
    /// [`flight`](Recorder::flight).
    pub fn enabled_with_flight(flight: FlightRecorder) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                flight,
            })),
        }
    }

    /// The flight recorder this recorder emits into (disabled unless
    /// created via [`enabled_with_flight`](Recorder::enabled_with_flight)).
    pub fn flight(&self) -> FlightRecorder {
        self.inner
            .as_ref()
            .map(|i| i.flight.clone())
            .unwrap_or_default()
    }

    /// `true` iff this recorder stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it records itself when dropped (or on
    /// [`Span::finish`]).
    pub fn span(&self, name: &str) -> Span {
        Span {
            slot: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), name.to_string(), Instant::now())),
        }
    }

    /// A handle to the named counter (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            slot: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), name.to_string())),
        }
    }

    /// Add to the named counter directly.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            *inner
                .counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_insert(0) += n;
        }
    }

    /// Microseconds since the recorder's epoch (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.epoch.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// Snapshot of all finished spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|i| i.spans.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .as_ref()
            .map(|i| i.counters.lock().unwrap().clone())
            .unwrap_or_default()
    }
}

/// An open span. Dropping it records the elapsed interval into the
/// recorder that created it; spans from a disabled recorder are free.
#[must_use = "a span measures the interval until it is dropped"]
pub struct Span {
    slot: Option<(Arc<Inner>, String, Instant)>,
}

impl Span {
    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.slot.take() {
            let start_us = start.duration_since(inner.epoch).as_micros() as u64;
            let dur_us = start.elapsed().as_micros() as u64;
            inner.flight.emit(
                "span",
                &[
                    ("name", Json::from(name.as_str())),
                    ("dur_us", Json::from(dur_us)),
                ],
            );
            inner.spans.lock().unwrap().push(SpanRecord {
                name,
                start_us,
                dur_us,
            });
        }
    }
}

/// A handle to one named counter of a [`Recorder`].
pub struct Counter {
    slot: Option<(Arc<Inner>, String)>,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some((inner, name)) = &self.slot {
            *inner
                .counters
                .lock()
                .unwrap()
                .entry(name.clone())
                .or_insert(0) += n;
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _s = rec.span("phase");
            rec.add("n", 3);
            rec.counter("m").incr();
        }
        assert!(rec.spans().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn spans_record_on_drop_in_completion_order() {
        let rec = Recorder::enabled();
        {
            let outer = rec.span("outer");
            rec.span("inner").finish();
            outer.finish();
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        // The outer span covers the inner one.
        assert!(spans[1].start_us <= spans[0].start_us);
        assert!(
            spans[1].start_us + spans[1].dur_us >= spans[0].start_us + spans[0].dur_us,
            "outer must end no earlier than inner"
        );
    }

    #[test]
    fn counters_accumulate() {
        let rec = Recorder::enabled();
        let c = rec.counter("candidates");
        c.add(10);
        c.incr();
        rec.add("candidates", 5);
        rec.add("other", 1);
        let counters = rec.counters();
        assert_eq!(counters["candidates"], 16);
        assert_eq!(counters["other"], 1);
    }

    #[test]
    fn clones_share_storage() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.add("x", 2);
        assert_eq!(rec.counters()["x"], 2);
    }

    #[test]
    fn spans_mirror_into_the_flight_recorder() {
        let flight = FlightRecorder::with_capacity(8);
        let rec = Recorder::enabled_with_flight(flight.clone());
        rec.span("phase.partition").finish();
        let evs = flight.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "span");
        assert_eq!(
            evs[0].fields[0],
            ("name".to_string(), Json::from("phase.partition"))
        );
        // A plain enabled recorder has a disabled flight side.
        assert!(!Recorder::enabled().flight().is_enabled());
        assert!(!Recorder::disabled().flight().is_enabled());
    }
}
