//! End-to-end tests of the `loom` binary itself.

use std::process::Command;

fn loom(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_loom"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn usage_on_no_args() {
    let (_, err, ok) = loom(&[]);
    assert!(!ok);
    assert!(err.contains("usage: loom"));
}

#[test]
fn workloads_lists_all() {
    let (out, _, ok) = loom(&["workloads"]);
    assert!(ok);
    for name in [
        "l1",
        "matmul",
        "matvec",
        "conv1d",
        "sor",
        "transitive",
        "dft",
        "conv2d",
        "triangular",
    ] {
        assert!(out.contains(name), "missing {name}:\n{out}");
    }
}

#[test]
fn partition_prints_paper_numbers() {
    let (out, _, ok) = loom(&["partition", "--workload", "l1", "--size", "4"]);
    assert!(ok);
    assert!(out.contains("33 total, 12 interblock"));
    assert!(out.contains("laws: all hold"));
}

#[test]
fn simulate_reports_makespan() {
    let (out, _, ok) = loom(&[
        "simulate",
        "--workload",
        "matvec",
        "--size",
        "16",
        "--cube",
        "2",
    ]);
    assert!(ok);
    assert!(out.contains("makespan"));
    assert!(out.contains("P3"));
}

#[test]
fn codegen_run_verifies() {
    let (out, _, ok) = loom(&[
        "codegen",
        "--workload",
        "l1",
        "--size",
        "4",
        "--cube",
        "1",
        "--run",
    ]);
    assert!(ok);
    assert!(out.contains("bit-identical"));
}

#[test]
fn table1_matches_paper() {
    let (out, _, ok) = loom(&["table1"]);
    assert!(ok);
    assert!(out.contains("786944·t_calc + 2046·(t_comm+t_start)"));
}

#[test]
fn viz_prints_grids() {
    let (out, _, ok) = loom(&["viz", "--workload", "sor", "--size", "6"]);
    assert!(ok);
    assert!(out.contains("blocks (one letter per block):"));
    assert!(out.contains("hyperplane steps (mod 10):"));
}

#[test]
fn viz_dot_emits_graphviz() {
    let (out, _, ok) = loom(&[
        "viz",
        "--workload",
        "matmul",
        "--size",
        "4",
        "--dot",
        "--cube",
        "2",
    ]);
    assert!(ok);
    assert!(out.contains("digraph groups {"));
    assert!(out.contains("graph tig {"));
    assert!(out.contains("subgraph cluster_p0"));
}

#[test]
fn file_frontend_works() {
    let dir = std::env::temp_dir().join("loom-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.loom");
    std::fs::write(&path, "for i = 0 to 7\n A[i+1] = A[i] + 1;\n").unwrap();
    let (out, _, ok) = loom(&["partition", "--file", path.to_str().unwrap()]);
    assert!(ok, "partition on file failed:\n{out}");
    assert!(out.contains("D = [[1]]"));
    // A fully serial chain: one block, zero interblock arcs.
    assert!(out.contains("1 blocks"));
}

#[test]
fn bad_workload_fails_cleanly() {
    let (_, err, ok) = loom(&["partition", "--workload", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown workload"));
}

#[test]
fn bad_file_fails_cleanly() {
    let (_, err, ok) = loom(&["partition", "--file", "/definitely/missing.loom"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));
}

#[test]
fn check_clean_pipeline_exits_zero() {
    let (out, _, ok) = loom(&["check", "--workload", "sor", "--size", "8", "--cube", "2"]);
    assert!(ok, "{out}");
    assert!(out.contains("check: 0 error(s)"), "{out}");
}

#[test]
fn check_illegal_pi_reports_lc001_and_fails() {
    let (out, _, ok) = loom(&["check", "--workload", "l1", "--size", "4", "--pi", "1,-1"]);
    assert!(!ok);
    assert!(out.contains("error[LC001]"), "{out}");
    assert!(out.contains("Π·d"), "{out}");
}

#[test]
fn check_json_is_machine_readable() {
    let (out, _, ok) = loom(&[
        "check",
        "--workload",
        "l1",
        "--size",
        "4",
        "--pi",
        "1,-1",
        "--json",
    ]);
    assert!(!ok);
    assert!(out.contains("\"rule\": \"LC001\""), "{out}");
    assert!(out.contains("\"severity\": \"error\""), "{out}");
    assert!(out.contains("\"counts\""), "{out}");
}

#[test]
fn check_allow_downgrades_to_warning() {
    let (out, _, ok) = loom(&[
        "check",
        "--workload",
        "l1",
        "--size",
        "4",
        "--pi",
        "1,-1",
        "--allow",
        "LC001",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("warning[LC001]"), "{out}");
    assert!(out.contains("check: 0 error(s)"), "{out}");
}

#[test]
fn check_file_frontend_works() {
    let dir = std::env::temp_dir().join("loom-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("check.loom");
    std::fs::write(&path, "for i = 0 to 7\n A[i+1] = A[i] + 1;\n").unwrap();
    let (out, _, ok) = loom(&["check", "--file", path.to_str().unwrap(), "--cube", "0"]);
    assert!(ok, "{out}");
    assert!(out.contains("check: 0 error(s)"), "{out}");
}

#[test]
fn sim_fault_plan_honors_allow_lc008() {
    // A plan with an inverted window is an LC008 error, but the window
    // simply never applies at runtime — the canonical case for
    // `--allow LC008`. The suppression path must be uniform with every
    // other rule (the plan gate routes through the same Report).
    let dir = std::env::temp_dir().join("loom-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inverted.json");
    std::fs::write(
        &path,
        r#"{"events": [{"kind": "proc_slow", "proc": 0, "factor": 2, "at": 10, "until": 5}]}"#,
    )
    .unwrap();
    let base = [
        "sim",
        "--workload",
        "l1",
        "--size",
        "4",
        "--cube",
        "1",
        "--fault-plan",
        path.to_str().unwrap(),
    ];
    let (_, err, ok) = loom(&base);
    assert!(!ok, "unallowed LC008 error must refuse the run");
    assert!(err.contains("error[LC008]"), "{err}");
    let mut allowed = base.to_vec();
    allowed.extend(["--allow", "LC008"]);
    let (out, err, ok) = loom(&allowed);
    assert!(ok, "--allow LC008 must admit the run:\n{err}");
    assert!(err.contains("warning[LC008]"), "{err}");
    assert!(out.contains("makespan"), "{out}");
}

#[test]
fn check_explain_prints_catalog_entry() {
    let (out, _, ok) = loom(&["check", "--explain", "LC013"]);
    assert!(ok);
    assert!(out.contains("interleaving-deadlock"), "{out}");
    assert!(out.contains("DPOR"), "{out}");
    assert!(out.contains("docs/CHECKS.md"), "{out}");
    let (_, err, ok) = loom(&["check", "--explain", "LC099"]);
    assert!(!ok);
    assert!(err.contains("LC001 through LC018"), "{err}");
}

#[test]
fn check_interleave_clean_exits_zero() {
    let (out, _, ok) = loom(&[
        "check",
        "--workload",
        "l1",
        "--size",
        "6",
        "--cube",
        "2",
        "--interleave",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("check: 0 error(s)"), "{out}");
}

#[test]
fn check_corrupt_drop_send_reports_lc013_trace() {
    let (out, _, ok) = loom(&[
        "check",
        "--workload",
        "l1",
        "--size",
        "6",
        "--cube",
        "2",
        "--corrupt",
        "drop-send",
    ]);
    assert!(!ok);
    assert!(out.contains("error[LC013]"), "{out}");
    assert!(out.contains("trace"), "{out}");
    assert!(out.contains("deadlock"), "{out}");
}

#[test]
fn check_symbolic_and_interleave_conflict() {
    let (_, err, ok) = loom(&[
        "check",
        "--workload",
        "l1",
        "--size",
        "4",
        "--cube",
        "1",
        "--symbolic",
        "--interleave",
    ]);
    assert!(!ok);
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn explore_ranks() {
    let (out, _, ok) = loom(&[
        "explore",
        "--workload",
        "l1",
        "--size",
        "4",
        "--cubes",
        "1",
        "--top",
        "3",
    ]);
    assert!(ok);
    assert!(out.contains("rank"));
    assert!(out.contains("makespan"));
}
