//! Symbolic cost engine — the paper's Table I derivation, mechanized.
//!
//! §IV of the paper derives `T_exec` for matrix–vector multiplication
//! *by hand*: a closed form in the problem size `M`, evaluated at any
//! size without executing anything. The simulator reproduces those
//! numbers, but its cost scales with iteration-space **points**; this
//! module recovers the closed form mechanically, so a configuration's
//! cost at `M = 10⁹` is one O(1) evaluation in checked `i128`.
//!
//! The derivation rests on the same structure the PR 5 symbolic checker
//! exploits: under an affine-bound space and a uniform dependence set,
//! every projection line's schedule is an arithmetic progression
//! ([`loom_check::ap_overlap`]), block shapes grow affinely with the
//! size parameter, and the Gray-code mapping is periodic in the block
//! index. Ehrhart's theorem then makes every counted quantity — block
//! counts, per-link message counts, busiest-processor load, schedule
//! length, and the event-driven makespan itself — a **quasi-polynomial**
//! of the size parameter `n`: a polynomial of degree ≤ the nest depth
//! whose coefficients cycle with a small period (Table I's own `W(M)`
//! has period `N` through `l = ⌊(N−2)/N·M⌋ + 1`).
//!
//! [`derive`] therefore:
//!
//! 1. **guards** the configuration: uniform dependences that are stable
//!    across sizes, a fault-free machine, Lemma 1 discharged by the
//!    Presburger core ([`loom_check::check_lemma1_symbolic`]), and the
//!    LC011 AP traffic summary agreeing with the engine's message count
//!    on every probe;
//! 2. **probes** the configuration at a window of small sizes through
//!    the real pipeline and the real discrete-event engine (the
//!    *validation oracle*, [`loom_machine::oracle_summary`]);
//! 3. **fits** each quantity as a quasi-polynomial by finite
//!    differences, per residue class, trying periods in ascending
//!    order; a fit is accepted only if it also reproduces at least two
//!    held-out probes per residue class **exactly**;
//! 4. **validates** the fit against the oracle on a geometric ladder of
//!    sizes beyond the window — and at the target itself whenever that
//!    probe fits the budget. The event-driven makespan is *piecewise*
//!    quasi-polynomial (pipeline-fill transients end, compute overtakes
//!    communication), so a window fitted inside a transient regime
//!    extrapolates wrongly; a ladder mismatch **rebases** the window at
//!    the failing size and refits in the settled regime;
//! 5. returns [`Derivation::Unknown`] the moment anything fails —
//!    callers fall back to simulating at the target size, so the
//!    symbolic path can be wrong about *speed* but never about
//!    *numbers*.
//!
//! The result, [`SymbolicCost`], evaluates `T_exec` (and messages,
//! blocks, the paper's `2W`/`2M−2` decomposition) at any size in O(1);
//! `tests-int/tests/symbolic_cost.rs` asserts it equals the simulated
//! makespan exactly on every builtin workload, and reproduces Table I
//! verbatim from the fitted forms.

use crate::pipeline::MachineOptions;
use loom_loopir::{DepOptions, LoopNest, Point};
use loom_machine::{oracle_summary, simulate_scratch, Program, SimConfig, SimScratch, Topology};
use loom_partition::{partition, PartitionConfig, Partitioning};
use std::collections::BTreeMap;

/// A size-parameterized nest family: `family(n)` is the nest at size
/// parameter `n`. The symbolic engine requires the dependence set to be
/// the same for every probed `n` (guarded, not assumed).
pub type NestFamily = std::sync::Arc<dyn Fn(i64) -> LoopNest + Send + Sync>;

// ---------------------------------------------------------------------------
// Quasi-polynomials
// ---------------------------------------------------------------------------

/// A univariate quasi-polynomial in Newton (forward-difference) form:
/// for `n ≥ base` with `n = base + r + j·period` (`0 ≤ r < period`),
///
/// ```text
/// f(n) = Σ_k  diffs[r][k] · C(j, k)
/// ```
///
/// where `diffs[r]` are the forward differences of the residue-class
/// subsequence at stride `period`. All evaluation is checked `i128`;
/// [`eval`](QuasiPoly::eval) returns `None` below `base` or on
/// overflow, never a wrong number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuasiPoly {
    base: i64,
    period: i64,
    diffs: Vec<Vec<i128>>,
}

impl QuasiPoly {
    /// A constant form (period 1, degree 0), valid from `base`.
    pub fn constant(base: i64, value: i128) -> QuasiPoly {
        QuasiPoly {
            base,
            period: 1,
            diffs: vec![vec![value]],
        }
    }

    /// Smallest size the fit covers.
    pub fn base(&self) -> i64 {
        self.base
    }

    /// Period of the coefficient cycle (1 = plain polynomial).
    pub fn period(&self) -> i64 {
        self.period
    }

    /// Polynomial degree (per residue class).
    pub fn degree(&self) -> usize {
        self.diffs
            .iter()
            .map(|d| d.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Evaluate at `n` with checked arithmetic. `None` for `n < base`
    /// (the fit proves nothing there) or on `i128` overflow.
    pub fn eval(&self, n: i64) -> Option<i128> {
        if n < self.base {
            return None;
        }
        let off = (n - self.base) as i128;
        let p = self.period as i128;
        let r = (off % p) as usize;
        let j = off / p;
        let mut acc: i128 = 0;
        let mut binom: i128 = 1; // C(j, 0)
        for (k, &c) in self.diffs[r].iter().enumerate() {
            if k > 0 {
                // C(j, k) = C(j, k−1)·(j−k+1)/k — the division is exact.
                binom = binom.checked_mul(j - k as i128 + 1)? / k as i128;
            }
            acc = acc.checked_add(c.checked_mul(binom)?)?;
        }
        Some(acc)
    }

    /// Evaluate and narrow to `u64` (`None` on overflow / negative /
    /// below-base, as for [`eval`](QuasiPoly::eval)).
    pub fn eval_u64(&self, n: i64) -> Option<u64> {
        u64::try_from(self.eval(n)?).ok()
    }

    /// Human-readable closed form in the Newton basis, e.g.
    /// `f(n) = 12 + 7·C(j,1) + 2·C(j,2)  [n = 4 + r + 2j]`.
    pub fn render(&self, var: &str) -> String {
        let one = |coeffs: &[i128]| -> String {
            let terms: Vec<String> = coeffs
                .iter()
                .enumerate()
                .filter(|&(k, &c)| c != 0 || k == 0)
                .map(|(k, &c)| {
                    if k == 0 {
                        format!("{c}")
                    } else {
                        format!("{c}·C(j,{k})")
                    }
                })
                .collect();
            terms.join(" + ")
        };
        if self.period == 1 {
            format!(
                "{} = {}  [j = {var} − {}]",
                var,
                one(&self.diffs[0]),
                self.base
            )
        } else {
            let rows: Vec<String> = self
                .diffs
                .iter()
                .enumerate()
                .map(|(r, c)| format!("r={r}: {}", one(c)))
                .collect();
            format!(
                "{} with {var} = {} + r + {}·j: {}",
                var,
                self.base,
                self.period,
                rows.join("; ")
            )
        }
    }
}

/// Forward differences of a sequence (one order).
fn forward_diff(seq: &[i128]) -> Vec<i128> {
    seq.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Fit `values` (at consecutive sizes `base, base+1, …`) as a
/// quasi-polynomial of the given `period` and degree ≤ `degree`.
/// Every residue class must have at least `degree + 3` samples: the
/// first `degree + 1` differences become the Newton coefficients and
/// the **≥ 2 remaining samples are the holdout** — the (degree+1)-th
/// differences must vanish over the whole class, so the fitted form
/// reproduces every probed value exactly or the fit is rejected.
fn fit_series(values: &[i128], base: i64, period: i64, degree: usize) -> Option<QuasiPoly> {
    let p = period as usize;
    let mut diffs_all = Vec::with_capacity(p);
    for r in 0..p {
        let mut seq: Vec<i128> = values.iter().skip(r).step_by(p).copied().collect();
        if seq.len() < degree + 3 {
            return None;
        }
        let mut coeffs = Vec::with_capacity(degree + 1);
        for _ in 0..=degree {
            coeffs.push(seq[0]);
            seq = forward_diff(&seq);
        }
        if seq.iter().any(|&x| x != 0) {
            return None;
        }
        diffs_all.push(coeffs);
    }
    Some(QuasiPoly {
        base,
        period,
        diffs: diffs_all,
    })
}

/// Try ascending periods over the available window; first exact fit wins.
fn fit_component(values: &[i128], base: i64, periods: &[i64], degree: usize) -> Option<QuasiPoly> {
    periods
        .iter()
        .filter(|&&p| values.len() >= (p as usize) * (degree + 3))
        .find_map(|&p| fit_series(values, base, p, degree))
}

// ---------------------------------------------------------------------------
// Derivation options and results
// ---------------------------------------------------------------------------

/// Knobs of the probe-and-fit protocol.
#[derive(Clone, Debug)]
pub struct DeriveOptions {
    /// Degree cap for every fitted form; `None` uses the nest depth
    /// (the Ehrhart bound).
    pub degree: Option<usize>,
    /// Candidate coefficient periods, tried in ascending order.
    pub periods: Vec<i64>,
    /// Smallest size probed.
    pub min_base: i64,
    /// Largest size the base search may reach.
    pub max_base: i64,
    /// Total iteration-space points the probes may cost (partitioning
    /// and simulation both scale with points); exhausted ⇒ `Unknown`.
    pub max_probe_points: u64,
    /// Also fit the critical-path compute/startup/transit decomposition
    /// (PR 6 profiler) — costs traced probe simulations.
    pub profile: bool,
}

impl Default for DeriveOptions {
    fn default() -> DeriveOptions {
        DeriveOptions {
            degree: None,
            periods: vec![1, 2, 3, 4, 5, 6, 8, 10, 24],
            min_base: 2,
            max_base: 48,
            max_probe_points: 1_500_000,
            profile: false,
        }
    }
}

/// What the probes cost and where the fit window sat.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeriveStats {
    /// Probe simulations run.
    pub probe_sims: u64,
    /// Total iteration-space points across all probes.
    pub probe_points: u64,
    /// First size of the partition-probe window.
    pub base: i64,
    /// First size of the simulation-probe window (≥ `base`: mapping
    /// needs at least as many blocks as processors).
    pub sim_base: i64,
    /// Window length (consecutive sizes probed).
    pub window: i64,
}

/// The critical-path decomposition as closed forms (fitted from the
/// PR 6 profiler's attribution, which always sums to the makespan).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolicProfile {
    /// Nominal task execution ticks on the critical path.
    pub compute: QuasiPoly,
    /// `t_start` shares of sends and forwarding on the path.
    pub startup: QuasiPoly,
    /// `words·t_comm` wire time on the path.
    pub transit: QuasiPoly,
}

/// Closed-form cost of one (Π, grouping, cube) configuration family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolicCost {
    /// The simulated makespan `T_exec(n)`.
    pub t_exec: QuasiPoly,
    /// Messages sent (after batching, when configured).
    pub messages: QuasiPoly,
    /// Algorithm 1 block count.
    pub blocks: QuasiPoly,
    /// Schedule length (number of distinct hyperplane steps).
    pub steps: QuasiPoly,
    /// Busiest-processor flop count — the paper's `2W` term for matvec
    /// (its Table I `calc` coefficient multiplies `t_calc`).
    pub max_proc_flops: QuasiPoly,
    /// Optional critical-path decomposition.
    pub profile: Option<SymbolicProfile>,
    /// Number of processors of the configuration.
    pub num_procs: usize,
    /// Probe accounting.
    pub stats: DeriveStats,
}

impl SymbolicCost {
    /// `T_exec` at size `n` (`None` below the fit base or on overflow).
    pub fn makespan(&self, n: i64) -> Option<u64> {
        self.t_exec.eval_u64(n)
    }

    /// Message count at size `n`.
    pub fn messages_at(&self, n: i64) -> Option<u64> {
        self.messages.eval_u64(n)
    }

    /// Block count at size `n`.
    pub fn blocks_at(&self, n: i64) -> Option<u64> {
        self.blocks.eval_u64(n)
    }

    /// The paper's §IV occupancy decomposition at size `n`:
    /// `calc_coeff = ` busiest-processor flops (Table I's `2W` for
    /// matvec), `comm_coeff = steps − 1` communication rounds for a
    /// parallel machine (`2M − 2` for matvec) and 0 sequentially.
    pub fn exec_terms(&self, n: i64) -> Option<crate::analytic::ExecTerms> {
        let calc = self.max_proc_flops.eval_u64(n)?;
        let comm = if self.num_procs <= 1 {
            0
        } else {
            self.steps.eval_u64(n)?.checked_sub(1)?
        };
        Some(crate::analytic::ExecTerms {
            calc_coeff: calc,
            comm_coeff: comm,
        })
    }
}

/// Outcome of [`derive`].
#[derive(Clone, Debug)]
pub enum Derivation {
    /// Every component admitted an exactly-validated closed form.
    Exact(Box<SymbolicCost>),
    /// No closed form within the option budget — callers must fall
    /// back to the simulator at the target size (which is always
    /// correct, just not O(1)).
    Unknown {
        /// What failed first.
        reason: String,
    },
    /// The configuration is invalid at *every* size (grouping choice
    /// not maximal) or at the target size (machine larger than the
    /// block count): skip it, exactly as the simulating explorer does.
    Infeasible {
        /// Why the configuration cannot run.
        reason: String,
    },
}

// ---------------------------------------------------------------------------
// Probe cache
// ---------------------------------------------------------------------------

/// Copyable per-size simulation measurements.
#[derive(Clone, Copy, Debug)]
struct SimProbe {
    makespan: i128,
    messages: i128,
    max_proc_flops: i128,
    profile: Option<(i128, i128, i128)>,
}

/// One probed size: the partitioned artifacts plus lazily-filled
/// per-cube simulation summaries.
struct PartProbe {
    partitioning: Partitioning,
    flops_per_iter: u64,
    points: u64,
    blocks: i128,
    steps: i128,
    sims: BTreeMap<usize, SimProbe>,
}

enum Probe {
    /// `family(n)` has a different dependence set (boundary effect at a
    /// tiny size) — the size is unusable.
    DepsMismatch,
    /// Partitioning rejected the configuration at this size.
    PartitionFailed(String),
    Ok(Box<PartProbe>),
}

/// The resumable state of the symbolic-cost stage: every partitioning
/// and every probe simulation, memoized by size (and cube dimension).
/// One cache serves one `(family, Π, grouping, machine options)`
/// combination across any number of [`derive`] calls — exploration
/// reuses it across every machine size, and a later call with a larger
/// target resumes from the probes already paid for.
pub struct ProbeCache {
    probes: BTreeMap<i64, Probe>,
    point_counts: BTreeMap<i64, u64>,
    points_spent: u64,
    sims: u64,
    lemma1_checked: bool,
}

impl ProbeCache {
    /// Fresh cache (no probes yet).
    pub fn new() -> ProbeCache {
        ProbeCache {
            probes: BTreeMap::new(),
            point_counts: BTreeMap::new(),
            points_spent: 0,
            sims: 0,
            lemma1_checked: false,
        }
    }

    /// Total iteration-space points the probes have cost so far.
    pub fn points_spent(&self) -> u64 {
        self.points_spent
    }

    /// Probe simulations run so far.
    pub fn sims(&self) -> u64 {
        self.sims
    }

    /// Upper bound on what probing `[start, start + len)` (partition +
    /// one simulation each) would add to `points_spent`, skipping sizes
    /// already paid for. No probes run; point counts are memoized, and
    /// the walk stops early once the estimate clears `cap` — the
    /// caller only needs "over budget", not the exact figure.
    fn window_cost(
        &mut self,
        family: &dyn Fn(i64) -> LoopNest,
        start: i64,
        len: i64,
        cube_dim: usize,
        cap: u64,
    ) -> u64 {
        let mut cost = 0u64;
        for n in start..start + len {
            match self.probes.get(&n) {
                None => {
                    let pts = match self.point_counts.get(&n) {
                        Some(&p) => p,
                        None => {
                            // Count with an early exit: a huge size only
                            // needs to prove "over cap", not its exact
                            // (possibly 10^12) point count — and an
                            // incomplete count is not memoized.
                            let nest = family(n);
                            let mut p = 0u64;
                            let mut complete = true;
                            for _ in nest.space().points() {
                                p += 1;
                                if cost.saturating_add(p.saturating_mul(2)) > cap {
                                    complete = false;
                                    break;
                                }
                            }
                            if complete {
                                self.point_counts.insert(n, p);
                            }
                            p
                        }
                    };
                    cost = cost.saturating_add(pts.saturating_mul(2));
                }
                Some(Probe::Ok(pp)) if !pp.sims.contains_key(&cube_dim) => {
                    cost = cost.saturating_add(pp.points);
                }
                Some(_) => {}
            }
            if cost > cap {
                return cost;
            }
        }
        cost
    }

    /// Partition-probe `family(n)` (memoized).
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &mut self,
        family: &dyn Fn(i64) -> LoopNest,
        deps: &[Point],
        pi: &[i64],
        pcfg: &PartitionConfig,
        n: i64,
        budget: u64,
    ) -> Result<&mut Probe, String> {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.probes.entry(n) {
            let nest = family(n);
            let got = loom_loopir::deps::dependence_vectors(&nest, DepOptions::default());
            let entry = match got {
                Ok(d) if d == deps => {
                    let points = nest.space().count() as u64;
                    if self.points_spent.saturating_add(points) > budget {
                        return Err(format!(
                            "probe budget exhausted at size {n} ({} of {budget} points spent)",
                            self.points_spent
                        ));
                    }
                    self.points_spent += points;
                    let pi_fn = loom_hyperplane::TimeFn::new(pi.to_vec());
                    match partition(nest.space().clone(), deps.to_vec(), pi_fn.clone(), pcfg) {
                        Ok(partitioning) => Probe::Ok(Box::new(PartProbe {
                            blocks: partitioning.num_blocks() as i128,
                            steps: pi_fn.steps(nest.space()) as i128,
                            flops_per_iter: nest.flops_per_iteration(),
                            points,
                            partitioning,
                            sims: BTreeMap::new(),
                        })),
                        Err(e) => Probe::PartitionFailed(e.to_string()),
                    }
                }
                _ => Probe::DepsMismatch,
            };
            slot.insert(entry);
        }
        Ok(self.probes.get_mut(&n).expect("just inserted"))
    }

    /// Simulation-probe `family(n)` on the `cube_dim`-cube (memoized).
    /// The probe goes through the same stages and the same engine the
    /// explorer uses, plus the LC011 cross-check.
    #[allow(clippy::too_many_arguments)]
    fn sim_probe(
        &mut self,
        family: &dyn Fn(i64) -> LoopNest,
        deps: &[Point],
        pi: &[i64],
        pcfg: &PartitionConfig,
        n: i64,
        cube_dim: usize,
        machine: &MachineOptions,
        profile: bool,
        budget: u64,
        scratch: &mut SimScratch,
    ) -> Result<SimProbe, String> {
        let need_lemma1 = !self.lemma1_checked;
        let spent = self.points_spent;
        let probe = self.probe(family, deps, pi, pcfg, n, budget)?;
        let pp = match probe {
            Probe::Ok(pp) => pp,
            Probe::DepsMismatch => return Err(format!("dependence set changes at probe size {n}")),
            Probe::PartitionFailed(e) => {
                return Err(format!("partitioning fails at probe size {n}: {e}"))
            }
        };
        if let Some(s) = pp.sims.get(&cube_dim) {
            if !profile || s.profile.is_some() {
                return Ok(*s);
            }
        }
        if spent.saturating_add(pp.points) > budget {
            return Err(format!(
                "probe budget exhausted at size {n} ({spent} of {budget} points spent)"
            ));
        }
        if need_lemma1 {
            // LC009: Lemma 1 discharged symbolically (lattice argument +
            // Presburger core) — the structural license to extrapolate.
            let mut stats = loom_check::SymbolicStats::default();
            let diags = loom_check::check_lemma1_symbolic(&pp.partitioning, &mut stats);
            if !diags.is_empty() {
                return Err("symbolic Lemma 1 rejected the partitioning".to_string());
            }
        }
        let mapping = loom_mapping::map_partitioning(&pp.partitioning, cube_dim)
            .map_err(|e| format!("mapping fails at probe size {n}: {e:?}"))?;
        let num_procs = 1usize << cube_dim;
        let program = Program::from_partitioning(
            &pp.partitioning,
            mapping.assignment(),
            num_procs,
            pp.flops_per_iter,
        );
        let max_proc_flops = {
            let mut per_proc = vec![0u64; num_procs];
            for (t, &f) in program.task_flops.iter().enumerate() {
                per_proc[program.proc_of[t] as usize] += f;
            }
            per_proc.into_iter().max().unwrap_or(0) as i128
        };
        let sim_cfg = SimConfig {
            params: machine.params,
            topology: Topology::Hypercube(cube_dim),
            words_per_arc: machine.words_per_arc,
            batch_messages: machine.batch_messages,
            link_contention: machine.link_contention,
            record_trace: profile,
            collect_metrics: profile,
        };
        let (makespan, messages, prof) = if profile {
            let report = simulate_scratch(&program, &sim_cfg, scratch)
                .map_err(|e| format!("probe simulation failed at size {n}: {e:?}"))?;
            let cp = loom_machine::critical_path(&program, &sim_cfg, &report)
                .map_err(|e| format!("probe profiling failed at size {n}: {e:?}"))?;
            let a = cp.components;
            (
                report.makespan,
                report.messages,
                Some((a.compute as i128, a.startup as i128, a.transit as i128)),
            )
        } else {
            let s = oracle_summary(&program, &sim_cfg, scratch)
                .map_err(|e| format!("probe simulation failed at size {n}: {e:?}"))?;
            (s.makespan, s.messages, None)
        };
        // LC011 cross-check: the AP-overlap traffic summary must agree
        // with the engine's message count (unbatched runs only — the
        // engine merges messages under batching).
        if !machine.batch_messages {
            let traffic = loom_check::block_traffic(&pp.partitioning);
            if traffic.fallbacks > 0 {
                return Err(format!(
                    "AP structure broken at probe size {n} ({} fallback lines)",
                    traffic.fallbacks
                ));
            }
            let derived = traffic.remote_messages(mapping.assignment());
            if derived != messages {
                return Err(format!(
                    "LC011 traffic summary derives {derived} messages at size {n} \
                     but the engine sent {messages}"
                ));
            }
        }
        let sim = SimProbe {
            makespan: makespan as i128,
            messages: messages as i128,
            max_proc_flops,
            profile: prof,
        };
        pp.sims.insert(cube_dim, sim);
        let pp_points = pp.points;
        self.points_spent += pp_points;
        self.sims += 1;
        self.lemma1_checked = true;
        Ok(sim)
    }
}

impl Default for ProbeCache {
    fn default() -> Self {
        ProbeCache::new()
    }
}

// ---------------------------------------------------------------------------
// Derivation driver
// ---------------------------------------------------------------------------

fn unknown(reason: impl Into<String>) -> Derivation {
    Derivation::Unknown {
        reason: reason.into(),
    }
}

/// Derive the closed-form cost of the configuration
/// `(Π = pi, grouping per pcfg, 2^cube_dim processors)` over the size
/// family, exactly enough to stand in for the simulator at `target`.
///
/// `deps` is the dependence set of the *target* nest; probes guard that
/// every probed size reproduces it. Fits are validated three ways:
/// held-out probes inside the window (≥ 2 per residue class), a
/// geometric ladder of oracle probes at ~2× and ~4× the window end, and
/// — whenever the probe budget can afford it — **at the target size
/// itself**, making the answer oracle-equal by construction there. A
/// ladder mismatch means the engine crossed into a different cost
/// regime (pipeline-fill transients ending, compute overtaking
/// communication); the window is rebased past the mismatch and refit,
/// so accepted forms describe the regime the target actually lives in.
/// Any guard failure, unfittable window, or budget exhaustion yields
/// [`Derivation::Unknown`] so the caller simulates instead.
#[allow(clippy::too_many_arguments)]
pub fn derive(
    family: &dyn Fn(i64) -> LoopNest,
    deps: &[Point],
    pi: &[i64],
    pcfg: &PartitionConfig,
    cube_dim: usize,
    target: i64,
    machine: &MachineOptions,
    opts: &DeriveOptions,
    cache: &mut ProbeCache,
) -> Derivation {
    if machine.faults.is_some() {
        return unknown("fault plans name concrete processors and ticks; no size family");
    }
    if target < opts.min_base {
        return unknown(format!("target size {target} below probe base"));
    }
    let mut periods: Vec<i64> = opts.periods.iter().copied().filter(|&p| p >= 1).collect();
    periods.sort_unstable();
    periods.dedup();
    if periods.is_empty() {
        return unknown("no candidate periods configured");
    }
    let degree = opts
        .degree
        .unwrap_or_else(|| family(opts.min_base.max(1)).dim());
    let budget = opts.max_probe_points;
    let num_procs = 1usize << cube_dim;

    // 1. Base: the smallest size that reproduces the dependence set and
    // partitions. A grouping the partitioner rejects is rejected by a
    // rank argument independent of the bounds — infeasible at any size.
    let mut base = None;
    for n in opts.min_base..=opts.max_base {
        match cache.probe(family, deps, pi, pcfg, n, budget) {
            Err(e) => return unknown(e),
            Ok(Probe::DepsMismatch) => continue,
            Ok(Probe::PartitionFailed(e)) => {
                return Derivation::Infeasible {
                    reason: format!("partitioning rejects the configuration: {e}"),
                }
            }
            Ok(Probe::Ok(_)) => {
                base = Some(n);
                break;
            }
        }
    }
    let Some(base) = base else {
        return unknown(format!(
            "no size in [{}, {}] reproduces the target dependence set",
            opts.min_base, opts.max_base
        ));
    };

    if base > target {
        return unknown(format!(
            "target size {target} is below the smallest size ({base}) that \
             reproduces the dependence set"
        ));
    }
    let mut scratch = SimScratch::default();
    let min_window = degree as i64 + 3;

    // 2. Preliminary block-count form from partition-only probes at the
    // base: the cheap mapping-feasibility gate. Block counts are pure
    // lattice geometry — no machine constants, so no regime changes —
    // and the form is re-fitted and ladder-validated alongside the
    // simulated components below.
    let mut prelim_blocks = None;
    for &p in &periods {
        let window = p * (degree as i64 + 3);
        let series = match partition_series(cache, family, deps, pi, pcfg, base, window, budget) {
            Ok(s) => s,
            Err(e) => return unknown(e),
        };
        if let Some(b) = fit_component(&series.0, base, &periods, degree) {
            prelim_blocks = Some(b);
            break;
        }
    }
    let Some(prelim_blocks) = prelim_blocks else {
        return unknown("block count does not fit a quasi-polynomial over any probe window");
    };
    match prelim_blocks.eval(target) {
        None => return unknown("block count overflows at the target size"),
        Some(b) if b < num_procs as i128 => {
            return Derivation::Infeasible {
                reason: format!(
                    "{b} block(s) at size {target} cannot fill a {num_procs}-processor cube"
                ),
            }
        }
        Some(_) => {}
    }

    // 3. Fit / validate / rebase. Each attempt fits every component
    // over one window (ascending periods until everything fits), then
    // walks the validation ladder; a mismatch rebases the window past
    // the offending size and tries again.
    const MAX_ATTEMPTS: usize = 8;
    const SIZE_CAP: i64 = 1 << 20;
    let mut start = base;
    let mut last_reason = format!("no window fitted from size {base}");
    'attempts: for attempt in 0..MAX_ATTEMPTS {
        let mut fitted: Option<FitSet> = None;
        let mut skipped_for_budget = false;
        'rounds: for &p in &periods {
            let window = p * (degree as i64 + 3);
            // Place the window at or after `start` — but never start it
            // beyond the target: a fit based past the target proves
            // nothing at the target, while a window *containing* the
            // target is oracle-equal there by construction.
            let mut s = start.min(target);
            // Never sink more than half the remaining budget into one
            // speculative window: a long-period window that devours the
            // budget here would starve the cheap short-period fits that
            // later attempts (at slid starts) usually land. The skip is
            // free — only nest bounds materialize, no probes run.
            let remaining = budget.saturating_sub(cache.points_spent());
            let est = cache.window_cost(family, s, window, cube_dim, remaining / 2);
            if est > remaining / 2 {
                last_reason = format!(
                    "probe budget {budget} cannot afford a period-{p} fit window \
                     at size {s} (≈{est} points, {remaining} left)"
                );
                skipped_for_budget = true;
                continue 'rounds;
            }
            'place: loop {
                if s > SIZE_CAP {
                    return unknown(format!(
                        "no simulatable window below size {SIZE_CAP}: fewer blocks than processors"
                    ));
                }
                // `s` is re-read by `continue 'place`, not by this range.
                #[allow(clippy::mut_range_bound)]
                for n in s..s + window {
                    match cache.probe(family, deps, pi, pcfg, n, budget) {
                        Err(e) => return unknown(e),
                        Ok(Probe::Ok(pp)) if pp.blocks >= num_procs as i128 => {}
                        Ok(Probe::Ok(_)) => {
                            s = n + 1;
                            continue 'place;
                        }
                        Ok(Probe::DepsMismatch) => {
                            return unknown(format!("dependence set changes at probe size {n}"))
                        }
                        Ok(Probe::PartitionFailed(e)) => {
                            return unknown(format!("partitioning fails at probe size {n}: {e}"))
                        }
                    }
                }
                break;
            }
            let (blocks_v, steps_v) =
                match partition_series(cache, family, deps, pi, pcfg, s, window, budget) {
                    Ok(v) => v,
                    Err(e) => return unknown(e),
                };
            let mut mk_v = Vec::new();
            let mut msg_v = Vec::new();
            let mut load_v = Vec::new();
            let mut prof_v: Vec<(i128, i128, i128)> = Vec::new();
            for n in s..s + window {
                match cache.sim_probe(
                    family,
                    deps,
                    pi,
                    pcfg,
                    n,
                    cube_dim,
                    machine,
                    opts.profile,
                    budget,
                    &mut scratch,
                ) {
                    Err(e) => return unknown(e),
                    Ok(sp) => {
                        mk_v.push(sp.makespan);
                        msg_v.push(sp.messages);
                        load_v.push(sp.max_proc_flops);
                        if let Some(t) = sp.profile {
                            prof_v.push(t);
                        }
                    }
                }
            }
            let fits = (
                fit_component(&blocks_v, s, &periods, degree),
                fit_component(&steps_v, s, &periods, degree),
                fit_component(&mk_v, s, &periods, degree),
                fit_component(&msg_v, s, &periods, degree),
                fit_component(&load_v, s, &periods, degree),
            );
            let (Some(blocks), Some(steps), Some(t_exec), Some(messages), Some(load)) = fits else {
                continue 'rounds;
            };
            let profile = if opts.profile {
                let series: [Vec<i128>; 3] = [
                    prof_v.iter().map(|t| t.0).collect(),
                    prof_v.iter().map(|t| t.1).collect(),
                    prof_v.iter().map(|t| t.2).collect(),
                ];
                let fitted = (
                    fit_component(&series[0], s, &periods, degree),
                    fit_component(&series[1], s, &periods, degree),
                    fit_component(&series[2], s, &periods, degree),
                );
                let (Some(compute), Some(startup), Some(transit)) = fitted else {
                    continue 'rounds;
                };
                Some(SymbolicProfile {
                    compute,
                    startup,
                    transit,
                })
            } else {
                None
            };
            fitted = Some(FitSet {
                blocks,
                steps,
                t_exec,
                messages,
                load,
                profile,
                num_procs,
                sim_base: s,
                window,
            });
            break 'rounds;
        }
        let Some(fit) = fitted else {
            // No period fits any window at `start`: the window likely
            // spans a regime boundary. Slide forward — linearly at
            // first (transients often end a handful of sizes in), then
            // doubling (the target clamp above anchors any late window
            // at the target itself, so overshooting is safe). When a
            // window was skipped for budget, keep that reason: it is
            // the actionable one.
            if !skipped_for_budget {
                last_reason = format!(
                    "no exact quasi-polynomial fit (period ≤ {}) over windows from size {start}",
                    periods.last().unwrap()
                );
            }
            start += min_window << attempt.saturating_sub(2);
            continue 'attempts;
        };

        // Mapping feasibility at the target, from the final block form.
        match fit.blocks.eval(target) {
            None => return unknown("block count overflows at the target size"),
            Some(b) if b < num_procs as i128 => {
                return Derivation::Infeasible {
                    reason: format!(
                        "{b} block(s) at size {target} cannot fill a {num_procs}-processor cube"
                    ),
                }
            }
            Some(_) => {}
        }

        // 4. Validation ladder. A target inside the window is already
        // oracle-equal (the Newton form interpolates every probe).
        let edge = fit.sim_base + fit.window - 1;
        if target <= edge {
            return exact(fit, base, cache);
        }
        let mut checks: Vec<i64> = Vec::new();
        let mut v = 2 * edge;
        while checks.len() < 2 && v < target {
            if !affordable(family, v, cache, budget) {
                break;
            }
            checks.push(v);
            v *= 2;
        }
        let target_affordable = affordable(family, target, cache, budget);
        if target_affordable {
            checks.push(target);
        } else if checks.is_empty() {
            return unknown(
                "probe budget cannot afford any validation probe beyond the fit window",
            );
        }
        for &v in &checks {
            match validate_at(
                cache,
                family,
                deps,
                pi,
                pcfg,
                v,
                cube_dim,
                machine,
                &fit,
                opts.profile,
                budget,
                &mut scratch,
            ) {
                Err(e) => return unknown(e),
                Ok(true) => {}
                Ok(false) => {
                    last_reason = format!(
                        "fit over [{}, {}) breaks at size {v}: a different cost regime",
                        fit.sim_base,
                        fit.sim_base + fit.window
                    );
                    start = v;
                    continue 'attempts;
                }
            }
        }
        return exact(fit, base, cache);
    }
    unknown(format!(
        "no stable fit window after {MAX_ATTEMPTS} attempts: {last_reason}"
    ))
}

/// Everything [`derive`] fits for one window, pre-validation.
struct FitSet {
    blocks: QuasiPoly,
    steps: QuasiPoly,
    t_exec: QuasiPoly,
    messages: QuasiPoly,
    load: QuasiPoly,
    profile: Option<SymbolicProfile>,
    num_procs: usize,
    sim_base: i64,
    window: i64,
}

fn exact(fit: FitSet, base: i64, cache: &ProbeCache) -> Derivation {
    Derivation::Exact(Box::new(SymbolicCost {
        t_exec: fit.t_exec,
        messages: fit.messages,
        blocks: fit.blocks,
        steps: fit.steps,
        max_proc_flops: fit.load,
        profile: fit.profile,
        num_procs: fit.num_procs,
        stats: DeriveStats {
            probe_sims: cache.sims(),
            probe_points: cache.points_spent(),
            base,
            sim_base: fit.sim_base,
            window: fit.window,
        },
    }))
}

/// Collect the (block count, schedule steps) series over
/// `[start, start + len)` from partition-level probes.
#[allow(clippy::too_many_arguments)]
fn partition_series(
    cache: &mut ProbeCache,
    family: &dyn Fn(i64) -> LoopNest,
    deps: &[Point],
    pi: &[i64],
    pcfg: &PartitionConfig,
    start: i64,
    len: i64,
    budget: u64,
) -> Result<(Vec<i128>, Vec<i128>), String> {
    let mut blocks = Vec::new();
    let mut steps = Vec::new();
    for n in start..start + len {
        match cache.probe(family, deps, pi, pcfg, n, budget)? {
            Probe::Ok(pp) => {
                blocks.push(pp.blocks);
                steps.push(pp.steps);
            }
            Probe::DepsMismatch => return Err(format!("dependence set changes at probe size {n}")),
            Probe::PartitionFailed(e) => {
                return Err(format!("partitioning fails at probe size {n}: {e}"))
            }
        }
    }
    Ok((blocks, steps))
}

/// `true` iff a validation probe at size `n` (one partitioning plus one
/// simulation, ≈ 2× the point count) fits in the remaining budget. The
/// lattice is counted with an early exit at the affordable cap, so an
/// unaffordable size — say a 10^12-point target — costs O(budget)
/// iterations, never a full enumeration.
fn affordable(family: &dyn Fn(i64) -> LoopNest, n: i64, cache: &ProbeCache, budget: u64) -> bool {
    let cap = budget.saturating_sub(cache.points_spent()) / 2;
    let nest = family(n);
    let mut pts = 0u64;
    for _ in nest.space().points() {
        pts += 1;
        if pts > cap {
            return false;
        }
    }
    true
}

/// Oracle-check every fitted component at size `n`. `Ok(false)` means
/// the engine disagrees (regime change — rebase); `Err` means the probe
/// itself failed (guard or budget — give up).
#[allow(clippy::too_many_arguments)]
fn validate_at(
    cache: &mut ProbeCache,
    family: &dyn Fn(i64) -> LoopNest,
    deps: &[Point],
    pi: &[i64],
    pcfg: &PartitionConfig,
    n: i64,
    cube_dim: usize,
    machine: &MachineOptions,
    fit: &FitSet,
    profile: bool,
    budget: u64,
    scratch: &mut SimScratch,
) -> Result<bool, String> {
    let (blocks, steps) = match cache.probe(family, deps, pi, pcfg, n, budget)? {
        Probe::Ok(pp) => (pp.blocks, pp.steps),
        Probe::DepsMismatch => {
            return Err(format!("dependence set changes at validation size {n}"))
        }
        Probe::PartitionFailed(e) => {
            return Err(format!("partitioning fails at validation size {n}: {e}"))
        }
    };
    if fit.blocks.eval(n) != Some(blocks) || fit.steps.eval(n) != Some(steps) {
        return Ok(false);
    }
    let sp = cache.sim_probe(
        family, deps, pi, pcfg, n, cube_dim, machine, profile, budget, scratch,
    )?;
    if fit.t_exec.eval(n) != Some(sp.makespan)
        || fit.messages.eval(n) != Some(sp.messages)
        || fit.load.eval(n) != Some(sp.max_proc_flops)
    {
        return Ok(false);
    }
    if let Some(p) = &fit.profile {
        let Some((c, su, tr)) = sp.profile else {
            return Err(format!("validation probe at size {n} has no profile"));
        };
        if p.compute.eval(n) != Some(c)
            || p.startup.eval(n) != Some(su)
            || p.transit.eval(n) != Some(tr)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quasipoly_fits_and_evaluates_polynomials() {
        // f(n) = n² + 3n + 7 sampled at n = 2..12.
        let f = |n: i64| (n * n + 3 * n + 7) as i128;
        let vals: Vec<i128> = (2..12).map(f).collect();
        let qp = fit_series(&vals, 2, 1, 2).expect("degree-2 fit");
        for n in 2..200 {
            assert_eq!(qp.eval(n), Some(f(n)), "n={n}");
        }
        assert_eq!(qp.eval(1), None, "below base proves nothing");
        assert_eq!(qp.degree(), 2);
        assert_eq!(qp.period(), 1);
    }

    #[test]
    fn quasipoly_fits_periodic_coefficients() {
        // Table I's own shape: W(M) with period 4 at N = 4 — here a toy
        // with period 2: f(n) = n²  for even offsets, n² + n for odd.
        let f = |n: i64| ((n * n) + if n % 2 == 1 { n } else { 0 }) as i128;
        let vals: Vec<i128> = (3..23).map(f).collect();
        assert!(fit_series(&vals, 3, 1, 2).is_none(), "not a plain poly");
        let qp = fit_series(&vals, 3, 2, 2).expect("period-2 fit");
        for n in 3..300 {
            assert_eq!(qp.eval(n), Some(f(n)), "n={n}");
        }
    }

    #[test]
    fn holdout_rejects_non_polynomial_series() {
        let vals: Vec<i128> = (2..12).map(|n: i64| (1i128) << n).collect();
        for p in [1i64, 2] {
            assert!(fit_series(&vals, 2, p, 2).is_none(), "2^n must not fit");
        }
    }

    #[test]
    fn eval_checked_arithmetic_overflows_to_none() {
        let qp = QuasiPoly {
            base: 0,
            period: 1,
            diffs: vec![vec![i128::MAX, i128::MAX]],
        };
        assert_eq!(qp.eval(2), None, "overflow must be None, not wrap");
        assert_eq!(QuasiPoly::constant(1, 5).eval(7), Some(5));
    }

    #[test]
    fn matvec_canonical_derivation_matches_simulation() {
        let fam = |n: i64| loom_workloads::matvec::workload(n).nest;
        let deps = loom_workloads::matvec::workload(8).verified_deps();
        let machine = MachineOptions::default();
        let mut cache = ProbeCache::new();
        let d = derive(
            &fam,
            &deps,
            &[1, 1],
            &PartitionConfig::default(),
            2,
            40,
            &machine,
            &DeriveOptions::default(),
            &mut cache,
        );
        let Derivation::Exact(cost) = d else {
            panic!("matvec Π=(1,1) cube=2 must derive exactly: {d:?}");
        };
        // Oracle validation at a size beyond the probe window.
        let w = loom_workloads::matvec::workload(40);
        let out = crate::Pipeline::new(w.nest)
            .run(&crate::PipelineConfig {
                time_fn: Some(vec![1, 1]),
                cube_dim: 2,
                ..Default::default()
            })
            .unwrap();
        let sim = out.sim.unwrap();
        assert_eq!(cost.makespan(40), Some(sim.makespan));
        assert_eq!(cost.messages_at(40), Some(sim.messages));
        assert_eq!(
            cost.blocks_at(40),
            Some(out.partitioning.num_blocks() as u64)
        );
        // The paper's terms: W = matvec_max_points, steps = 2M − 1.
        let terms = cost.exec_terms(1024).unwrap();
        assert_eq!(
            terms.calc_coeff,
            2 * crate::analytic::matvec_max_points(1024, 4)
        );
        assert_eq!(terms.comm_coeff, 2046);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let fam = |n: i64| loom_workloads::matvec::workload(n).nest;
        let deps = loom_workloads::matvec::workload(8).verified_deps();
        let mut cache = ProbeCache::new();
        let d = derive(
            &fam,
            &deps,
            &[1, 1],
            &PartitionConfig::default(),
            2,
            1 << 20,
            &MachineOptions::default(),
            &DeriveOptions {
                max_probe_points: 10,
                ..Default::default()
            },
            &mut cache,
        );
        assert!(
            matches!(d, Derivation::Unknown { ref reason } if reason.contains("budget")),
            "{d:?}"
        );
    }

    #[test]
    fn oversized_cube_is_infeasible_from_the_block_form() {
        // matvec(n) has n blocks; a 2^6-cube needs 64 — infeasible at
        // target 40 and the explorer must skip, not fall back.
        let fam = |n: i64| loom_workloads::matvec::workload(n).nest;
        let deps = loom_workloads::matvec::workload(8).verified_deps();
        let mut cache = ProbeCache::new();
        let d = derive(
            &fam,
            &deps,
            &[1, 1],
            &PartitionConfig::default(),
            6,
            40,
            &MachineOptions::default(),
            &DeriveOptions {
                max_base: 80,
                max_probe_points: 1 << 20,
                ..Default::default()
            },
            &mut cache,
        );
        assert!(matches!(d, Derivation::Infeasible { .. }), "{d:?}");
    }
}
