//! Fault-injection properties across the whole pipeline: the empty
//! plan is invisible, degradation is a pure function of
//! `(program, plan, seed, policy)`, remap recovery completes every
//! builtin workload under a crash, and abort surfaces a typed error.
//! Randomness comes from a seeded [`SplitMix64`] so every run checks
//! the same cases.

use loom_machine::{
    simulate, simulate_with_faults, FaultConfig, FaultEvent, FaultPlan, MachineParams, Program,
    RecoveryPolicy, SimConfig, SimError, Topology,
};
use loom_mapping::map_partitioning;
use loom_obs::{Json, SplitMix64};
use loom_partition::{partition, PartitionConfig};

fn sim_config(cube_dim: usize) -> SimConfig {
    SimConfig {
        params: MachineParams::classic_1991(),
        topology: Topology::Hypercube(cube_dim),
        words_per_arc: 1,
        batch_messages: false,
        link_contention: false,
        record_trace: true,
        collect_metrics: false,
    }
}

/// Map a builtin workload onto the largest cube (≤ dim 3) it fits.
fn program_of(w: &loom_workloads::Workload) -> (Program, usize) {
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        w.time_fn(),
        &PartitionConfig::default(),
    )
    .unwrap();
    let (cube_dim, mapping) = (0..=3)
        .rev()
        .find_map(|d| map_partitioning(&p, d).ok().map(|m| (d, m)))
        .unwrap();
    let prog = Program::from_partitioning(
        &p,
        mapping.assignment(),
        1 << cube_dim,
        w.nest.flops_per_iteration(),
    );
    (prog, cube_dim)
}

/// A random but replayable fault plan for an `n`-processor cube.
fn random_plan(rng: &mut SplitMix64, n: usize) -> FaultPlan {
    // Seeds stay in i64 range: the JSON layer stores integers as i64,
    // so larger seeds cannot round-trip (LC008 rejects such plans).
    let mut plan = FaultPlan::message_noise(
        rng.next_u64() >> 1,
        rng.below(120) as u32,
        rng.below(30) as u32,
        rng.below(120) as u32,
    );
    if rng.below(2) == 1 && n > 1 {
        let from = rng.below(n as u64) as usize;
        let bit = 1usize << rng.below(n.trailing_zeros().max(1) as u64);
        let at = rng.below(500);
        plan = plan.with_event(FaultEvent::LinkDown {
            from,
            to: from ^ bit,
            at,
            until: Some(at + 1 + rng.below(400)),
        });
    }
    if rng.below(2) == 1 {
        let at = rng.below(300);
        plan = plan.with_event(FaultEvent::ProcSlow {
            proc: rng.below(n as u64) as usize,
            factor: 2 + rng.below(3),
            at,
            until: Some(at + 1 + rng.below(300)),
        });
    }
    plan
}

#[test]
fn empty_plan_is_bit_identical_to_baseline_everywhere() {
    for w in loom_workloads::all_default() {
        let (prog, cube_dim) = program_of(&w);
        let config = sim_config(cube_dim);
        let base = simulate(&prog, &config).unwrap();
        let fc = FaultConfig::new(FaultPlan::none(), RecoveryPolicy::RetryOnly);
        let faulted = simulate_with_faults(&prog, &config, &fc).unwrap();
        assert_eq!(faulted.makespan, base.makespan, "{}", w.nest.name());
        assert_eq!(faulted.compute, base.compute);
        assert_eq!(faulted.comm, base.comm);
        assert_eq!(faulted.messages, base.messages);
        assert_eq!(faulted.words, base.words);
        assert_eq!(faulted.trace, base.trace);
        let deg = faulted.degradation.unwrap();
        assert_eq!(deg.faults_hit, 0);
        assert_eq!(deg.degraded_makespan, base.makespan);
    }
}

#[test]
fn identical_seeds_give_identical_degradation() {
    let mut rng = SplitMix64::new(0x10ca_1fa1);
    let workloads = loom_workloads::all_default();
    for i in 0..24 {
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let (prog, cube_dim) = program_of(w);
        let config = sim_config(cube_dim);
        let plan = random_plan(&mut rng, 1 << cube_dim);
        let policy = if rng.below(2) == 0 {
            RecoveryPolicy::RetryOnly
        } else {
            RecoveryPolicy::Remap
        };
        let fc = FaultConfig::new(plan, policy);
        let a = simulate_with_faults(&prog, &config, &fc);
        let b = simulate_with_faults(&prog, &config, &fc);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.makespan, b.makespan, "case {i}");
                assert_eq!(a.degradation, b.degradation, "case {i}");
                assert_eq!(a.trace, b.trace, "case {i}");
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "case {i}"),
            (a, b) => panic!("case {i}: diverging outcomes {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn seed_override_changes_noise_not_determinism() {
    let w = loom_workloads::matvec::workload(16);
    let (prog, cube_dim) = program_of(&w);
    let config = sim_config(cube_dim);
    let mut fc = FaultConfig::new(
        FaultPlan::message_noise(1, 200, 0, 0),
        RecoveryPolicy::RetryOnly,
    );
    let with_plan_seed = simulate_with_faults(&prog, &config, &fc).unwrap();
    fc.seed_override = Some(999);
    let overridden_a = simulate_with_faults(&prog, &config, &fc).unwrap();
    let overridden_b = simulate_with_faults(&prog, &config, &fc).unwrap();
    assert_eq!(overridden_a.makespan, overridden_b.makespan);
    assert_eq!(overridden_a.degradation, overridden_b.degradation);
    // Different seed, different noise stream (the drop pattern moves).
    assert_ne!(
        with_plan_seed.degradation.unwrap().attribution,
        overridden_a.degradation.unwrap().attribution
    );
}

#[test]
fn remap_completes_every_builtin_workload_under_a_crash() {
    for w in loom_workloads::all_default() {
        let (prog, cube_dim) = program_of(&w);
        if cube_dim == 0 {
            continue; // nobody left to remap onto
        }
        let config = sim_config(cube_dim);
        let n = 1usize << cube_dim;
        let busiest = (0..n)
            .max_by_key(|&q| prog.proc_of.iter().filter(|&&r| r as usize == q).count())
            .unwrap();
        let fc = FaultConfig::new(
            FaultPlan::none().with_crash(busiest, 0),
            RecoveryPolicy::Remap,
        );
        let report = simulate_with_faults(&prog, &config, &fc)
            .unwrap_or_else(|e| panic!("{}: {e}", w.nest.name()));
        let deg = report.degradation.unwrap();
        assert_eq!(deg.crashes, 1, "{}", w.nest.name());
        assert!(deg.remapped_tasks > 0, "{}", w.nest.name());
        assert!(deg.state_transfer_words > 0, "{}", w.nest.name());
        assert!(deg.state_transfer_ticks > 0, "{}", w.nest.name());
        // Every task still completed, just not on the dead processor.
        let trace = report.trace.unwrap();
        assert_eq!(trace.len(), prog.len(), "{}", w.nest.name());
        assert!(trace.iter().all(|r| r.proc as usize != busiest || {
            // tasks finished before the crash tick keep their record
            r.end == 0
        }));
    }
}

#[test]
fn abort_and_retry_strand_on_crash_remap_does_not() {
    let w = loom_workloads::sor::workload(8, 8);
    let (prog, cube_dim) = program_of(&w);
    let config = sim_config(cube_dim);
    let plan = FaultPlan::none().with_crash(1, 0);
    for policy in [RecoveryPolicy::Abort, RecoveryPolicy::RetryOnly] {
        let err = simulate_with_faults(&prog, &config, &FaultConfig::new(plan.clone(), policy))
            .unwrap_err();
        match err {
            SimError::Unrecoverable { fault, task, at } => {
                assert!(fault.contains("fail-stopped"), "{fault}");
                assert!(task.is_some());
                assert_eq!(at, 0);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }
    let fc = FaultConfig::new(plan, RecoveryPolicy::Remap);
    assert!(simulate_with_faults(&prog, &config, &fc).is_ok());
}

#[test]
fn plans_round_trip_through_json() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..32 {
        let mut plan = random_plan(&mut rng, 8);
        if rng.below(2) == 1 {
            plan = plan.with_crash(rng.below(8) as usize, rng.below(1000));
        }
        let doc = Json::parse(&plan.to_json().render_pretty()).unwrap();
        assert_eq!(FaultPlan::from_json(&doc).unwrap(), plan);
    }
}

#[test]
fn lc008_accepts_what_the_simulator_accepts() {
    // Any plan LC008 passes for the topology must not make the
    // simulator panic — run a sample of random plans end to end.
    let mut rng = SplitMix64::new(11);
    let w = loom_workloads::matvec::workload(8);
    let (prog, cube_dim) = program_of(&w);
    let config = sim_config(cube_dim);
    for _ in 0..16 {
        let plan = random_plan(&mut rng, 1 << cube_dim);
        let diags = loom_check::check_fault_plan(&plan, &config.topology);
        assert!(
            !diags
                .iter()
                .any(|d| d.severity == loom_check::Severity::Error),
            "{diags:?}"
        );
        let fc = FaultConfig::new(plan, RecoveryPolicy::Remap);
        // Completion or a typed error are both acceptable; panics and
        // hangs are not.
        let _ = simulate_with_faults(&prog, &config, &fc);
    }
}
