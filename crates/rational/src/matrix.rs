//! A small dense matrix of exact rationals.

use crate::ratio::Ratio;
use crate::vector::QVec;
use std::fmt;

/// A dense `rows × cols` matrix over ℚ, stored row-major.
///
/// Used for the projected-dependence matrix `mat(D^p)` whose rank β decides
/// how many auxiliary grouping vectors Algorithm 1 selects, and for solving
/// the small linear systems that arise in legality checks.
#[derive(Clone, PartialEq, Eq)]
pub struct QMat {
    rows: usize,
    cols: usize,
    data: Vec<Ratio>,
}

impl QMat {
    /// A zero matrix.
    pub fn zero(rows: usize, cols: usize) -> QMat {
        QMat {
            rows,
            cols,
            data: vec![Ratio::ZERO; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> QMat {
        let mut m = QMat::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Ratio::ONE;
        }
        m
    }

    /// Build from row slices of integers. Panics on ragged input.
    pub fn from_int_rows(rows: &[&[i64]]) -> QMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend(row.iter().map(|&x| Ratio::int(x)));
        }
        QMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build a matrix whose *columns* are the given vectors
    /// (the paper's `mat(D^p)` has one column per projected dependence).
    /// Panics if the vectors disagree on dimension.
    pub fn from_columns(cols: &[QVec]) -> QMat {
        let c = cols.len();
        let r = cols.first().map_or(0, |v| v.dim());
        let mut m = QMat::zero(r, c);
        for (j, v) in cols.iter().enumerate() {
            assert_eq!(v.dim(), r, "column dimension mismatch");
            for i in 0..r {
                m[(i, j)] = v[i];
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a vector.
    pub fn row(&self, i: usize) -> QVec {
        assert!(i < self.rows);
        QVec::new(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Column `j` as a vector.
    pub fn col(&self, j: usize) -> QVec {
        assert!(j < self.cols);
        QVec::new((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &QVec) -> QVec {
        assert_eq!(v.dim(), self.cols, "mat-vec dimension mismatch");
        QVec::new((0..self.rows).map(|i| self.row(i).dot(v)).collect())
    }

    /// Transpose.
    pub fn transpose(&self) -> QMat {
        let mut t = QMat::zero(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Swap two rows in place.
    pub(crate) fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let t = self[(a, j)];
            self[(a, j)] = self[(b, j)];
            self[(b, j)] = t;
        }
    }
}

impl std::ops::Index<(usize, usize)> for QMat {
    type Output = Ratio;
    fn index(&self, (i, j): (usize, usize)) -> &Ratio {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for QMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Ratio {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for QMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            writeln!(f, "{}", self.row(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = QMat::from_int_rows(&[&[1, 2], &[3, 4], &[5, 6]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], Ratio::int(6));
        assert_eq!(m.row(1), QVec::from_ints(&[3, 4]));
        assert_eq!(m.col(0), QVec::from_ints(&[1, 3, 5]));
    }

    #[test]
    fn from_columns_matches() {
        let cols = vec![QVec::from_ints(&[1, 2]), QVec::from_ints(&[3, 4])];
        let m = QMat::from_columns(&cols);
        assert_eq!(m.col(0), cols[0]);
        assert_eq!(m.col(1), cols[1]);
        assert_eq!(m.row(0), QVec::from_ints(&[1, 3]));
    }

    #[test]
    fn identity_mul() {
        let id = QMat::identity(3);
        let v = QVec::from_ints(&[7, -2, 5]);
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn transpose_involution() {
        let m = QMat::from_int_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_vec_dot_consistency() {
        let m = QMat::from_int_rows(&[&[1, -1], &[2, 0]]);
        let v = QVec::from_ints(&[3, 4]);
        let r = m.mul_vec(&v);
        assert_eq!(r, QVec::from_ints(&[-1, 6]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range() {
        let m = QMat::zero(2, 2);
        let _ = m[(2, 0)];
    }
}
