//! Exhaustive search for an optimal legal time transformation.

use crate::time::TimeFn;
use crate::Error;
use loom_loopir::{IterSpace, Point};
use loom_obs::Recorder;

/// Configuration for [`find_optimal`].
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Coefficients are searched in `[-bound, bound]`. For constant
    /// dependence sets the optimal Π has small coefficients, so the
    /// default of 3 covers every loop in the paper with room to spare.
    pub bound: i64,
    /// Spaces with at most this many points are evaluated exactly; larger
    /// spaces use the coordinate bounding box (exact for rectangular
    /// spaces, an upper bound otherwise).
    pub exact_eval_limit: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            bound: 3,
            exact_eval_limit: 100_000,
        }
    }
}

/// Number of steps Π needs on `space`, evaluated via the bounding box
/// (exact when the space is a box since the extremes of a linear function
/// over a box are attained at corners).
fn steps_via_bbox(pi: &TimeFn, bbox: &[(i64, i64)]) -> i64 {
    let (mut lo, mut hi) = (0i64, 0i64);
    for (a, &(l, h)) in pi.coeffs().iter().zip(bbox) {
        if l > h {
            return 0; // empty space
        }
        let (x, y) = (a * l, a * h);
        lo += x.min(y);
        hi += x.max(y);
    }
    hi - lo + 1
}

/// Find a legal Π minimizing the number of execution steps over `space`.
///
/// Ties are broken toward the smallest coefficient L1-norm, then
/// lexicographically smallest coefficient vector, so the result is
/// deterministic. With `D = {(0,1),(1,0),(1,1)}` on a square space this
/// returns the paper's `Π = (1,1)`.
pub fn find_optimal(
    deps: &[Point],
    space: &IterSpace,
    config: SearchConfig,
) -> Result<TimeFn, Error> {
    find_optimal_with(deps, space, config, &Recorder::disabled())
}

/// [`find_optimal`] with instrumentation: when `recorder` is enabled,
/// the search records a `hyperplane.search` span and the counters
/// `hyperplane.candidates` (coefficient vectors enumerated) and
/// `hyperplane.legal` (candidates legal for `deps`).
pub fn find_optimal_with(
    deps: &[Point],
    space: &IterSpace,
    config: SearchConfig,
    recorder: &Recorder,
) -> Result<TimeFn, Error> {
    let _span = recorder.span("hyperplane.search");
    let mut candidates = 0u64;
    let mut legal = 0u64;
    let n = space.dim();
    for d in deps {
        if d.len() != n {
            return Err(Error::DimMismatch {
                expected: n,
                found: d.len(),
            });
        }
        if d.iter().all(|&x| x == 0) {
            return Err(Error::ZeroDependence);
        }
    }

    let use_exact = space.count() <= config.exact_eval_limit;
    let bbox = space.bounding_box();

    let mut best: Option<(i64, i64, Vec<i64>)> = None; // (steps, l1, coeffs)
    let mut coeffs = vec![-config.bound; n];
    loop {
        candidates += 1;
        let pi = TimeFn::new(coeffs.clone());
        if pi.is_legal_for(deps) {
            legal += 1;
            let steps = if use_exact {
                pi.steps(space)
            } else {
                steps_via_bbox(&pi, &bbox)
            };
            let l1: i64 = coeffs.iter().map(|c| c.abs()).sum();
            let key = (steps, l1, coeffs.clone());
            if best.as_ref().is_none_or(|b| key < *b) {
                best = Some(key);
            }
        }
        // Odometer increment over the coefficient box.
        let mut k = n;
        loop {
            if k == 0 {
                recorder.add("hyperplane.candidates", candidates);
                recorder.add("hyperplane.legal", legal);
                let Some((_, _, c)) = best else {
                    return Err(Error::NotFound {
                        bound: config.bound,
                    });
                };
                return Ok(TimeFn::new(c));
            }
            k -= 1;
            if coeffs[k] < config.bound {
                coeffs[k] += 1;
                for c in &mut coeffs[k + 1..] {
                    *c = -config.bound;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_optimal_is_wavefront() {
        let deps = vec![vec![0, 1], vec![1, 0], vec![1, 1]];
        let space = IterSpace::rect(&[4, 4]).unwrap();
        let pi = find_optimal(&deps, &space, SearchConfig::default()).unwrap();
        assert_eq!(pi.coeffs(), &[1, 1]);
        assert_eq!(pi.steps(&space), 7);
    }

    #[test]
    fn matmul_optimal_is_wavefront() {
        let deps = vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]];
        let space = IterSpace::rect(&[4, 4, 4]).unwrap();
        let pi = find_optimal(&deps, &space, SearchConfig::default()).unwrap();
        assert_eq!(pi.coeffs(), &[1, 1, 1]);
    }

    #[test]
    fn single_dependence_allows_flat_schedule() {
        // Only (1, 0): Π = (1, 0) executes each outer iteration in one
        // step; the whole inner loop is parallel. Steps = 4 on 4×64.
        let deps = vec![vec![1, 0]];
        let space = IterSpace::rect(&[4, 64]).unwrap();
        let pi = find_optimal(&deps, &space, SearchConfig::default()).unwrap();
        assert_eq!(pi.coeffs(), &[1, 0]);
        assert_eq!(pi.steps(&space), 4);
    }

    #[test]
    fn negative_components_searchable() {
        // D = {(1, -1)} admits Π = (0, -1): a *negative* coefficient wins,
        // sweeping along decreasing j in only 4 steps on an 8×4 space.
        let deps = vec![vec![1, -1]];
        let space = IterSpace::rect(&[8, 4]).unwrap();
        let pi = find_optimal(&deps, &space, SearchConfig::default()).unwrap();
        assert!(pi.is_legal_for(&deps));
        assert_eq!(pi.coeffs(), &[0, -1]);
        assert_eq!(pi.steps(&space), 4);
    }

    #[test]
    fn contradictory_deps_not_found() {
        // (1,0) and (-1,0) cannot both have positive dot products.
        let deps = vec![vec![1, 0], vec![-1, 0]];
        let space = IterSpace::rect(&[4, 4]).unwrap();
        assert_eq!(
            find_optimal(&deps, &space, SearchConfig::default()),
            Err(Error::NotFound { bound: 3 })
        );
    }

    #[test]
    fn zero_dep_rejected() {
        let deps = vec![vec![0, 0]];
        let space = IterSpace::rect(&[4, 4]).unwrap();
        assert_eq!(
            find_optimal(&deps, &space, SearchConfig::default()),
            Err(Error::ZeroDependence)
        );
    }

    #[test]
    fn instrumented_search_counts_candidates() {
        let deps = vec![vec![0, 1], vec![1, 0], vec![1, 1]];
        let space = IterSpace::rect(&[4, 4]).unwrap();
        let rec = Recorder::enabled();
        let pi = find_optimal_with(&deps, &space, SearchConfig::default(), &rec).unwrap();
        assert_eq!(pi.coeffs(), &[1, 1]);
        let counters = rec.counters();
        // bound 3 → 7² coefficient vectors enumerated.
        assert_eq!(counters.get("hyperplane.candidates"), Some(&49));
        let &legal = counters.get("hyperplane.legal").unwrap();
        assert!(legal > 0 && legal < 49, "legal = {legal}");
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "hyperplane.search");
    }

    #[test]
    fn bbox_path_matches_exact_on_rect() {
        let deps = vec![vec![0, 1], vec![1, 0]];
        let space = IterSpace::rect(&[64, 64]).unwrap();
        let exact = find_optimal(
            &deps,
            &space,
            SearchConfig {
                exact_eval_limit: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        let bboxed = find_optimal(
            &deps,
            &space,
            SearchConfig {
                exact_eval_limit: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exact, bboxed);
    }
}
