//! A fixed-size histogram with power-of-two buckets.

/// Counts `u64` samples in buckets `[0]`, `[1]`, `[2,3]`, `[4,7]`, … —
/// 65 buckets cover the whole `u64` range, so recording never allocates
/// or saturates. Tracks count, sum, min, and max exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(lo, hi, count)` inclusive ranges, in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| match i {
                0 => (0, 0, c),
                64 => (1 << 63, u64::MAX, c),
                _ => (1 << (i - 1), (1 << i) - 1, c),
            })
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1 << 63, u64::MAX, 1),
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.min(), Some(1));
    }
}
