//! Rules `LC016`–`LC018` — certified uniformization.
//!
//! The loopir pass ([`loom_loopir::uniformize`]) *synthesizes* a basis
//! of constant vectors from a bounded sample of each non-uniform access
//! pair's conflicts. Sampling proves nothing beyond the sampled prefix,
//! so admission into the pipeline runs through this module, which turns
//! the claimed cover into Presburger proof obligations over the whole
//! iteration space:
//!
//! * **`LC016` soundness.** For a pair with basis `V` (columns
//!   `v₁ … v_m`), let `G = VᵀV`, `δ = det G > 0`, `W = adj(G)·Vᵀ` (so
//!   `W·V = δ·I`) and `P = V·W − δ·I` (whose kernel is the column
//!   span). A realized distance `d` is a non-negative *integer*
//!   combination of the basis iff `P·d = 0`, `W·d ≥ 0` componentwise,
//!   and `δ` divides every component of `W·d`. The rule conjoins the
//!   pair's exact conflict relation (subscript equalities + space
//!   bounds for both iterations + a lexicographic case split) with the
//!   *negation* of each condition — a span escape, a sign escape, or a
//!   divisibility escape — and asks the Presburger core. `Unsat` on
//!   every escape system is the size-independent proof; a `Sat` witness
//!   is a concrete uncovered conflict, rendered as evidence; `Unknown`
//!   (or coefficient overflow) rejects the nest. A pair with an *empty*
//!   basis claims conflict-freedom, proven by `Unsat` of the bare
//!   conflict relation itself. Never a wrong admission.
//! * **`LC017` tightness.** A synthesized `v` over-approximates when
//!   some in-space edge `x → x + v` is not a true conflict of its pair
//!   in either access order — synchronization the folded nest pays for
//!   nothing. The existence test is Presburger-backed; the warning
//!   carries the witness plus (for small nests) a census of legal
//!   schedules lost: candidate `Π` over `[−2,2]ⁿ` legal for the true
//!   relation vs. legal for the folded vector set.
//! * **`LC018` legality handoff.** The chosen schedule must satisfy
//!   `Π·v ≥ 1` for every synthesized vector, so `LC001`/`LC009`
//!   legality of the folded set carries to every realized distance at
//!   every size (each distance being a non-negative combination of the
//!   `v`'s by `LC016`).

use crate::diag::{Diagnostic, Report, RuleId, Span};
use crate::presburger::{System, Verdict};
use loom_hyperplane::TimeFn;
use loom_loopir::deps::NonUniformPair;
use loom_loopir::uniformize::{cover_matrices, uniformize, FoldError, PairFold, Uniformization};
use loom_loopir::{DepOptions, IterSpace, LoopNest, Point};

/// How the certification run discharged its obligations — surfaced as
/// `check.uniformize.*` observability counters by the pipeline gate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UniformizeStats {
    /// Non-uniform access pairs folded into synthesized bases.
    pub pairs_folded: u64,
    /// Distinct synthesized vectors across all folds.
    pub vectors_synthesized: u64,
    /// Escape systems the Presburger core refuted (`Unsat` proofs).
    pub proofs: u64,
    /// Escape systems with a `Sat` witness — refuted covers.
    pub refuted: u64,
    /// Escape systems the core could not decide (`Unknown`/overflow);
    /// each one rejects the nest.
    pub unknown: u64,
    /// `LC017` tightness warnings emitted.
    pub tightness_warnings: u64,
}

fn fmt_vec(v: &[i64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", parts.join(","))
}

fn pair_span(pair: &NonUniformPair) -> Span {
    Span::AccessPair {
        array: pair.array.clone(),
        a: pair.a.to_string(),
        b: pair.b.to_string(),
    }
}

// ---------------------------------------------------------------------------
// The conflict relation of one pair, as Presburger constraints
// ---------------------------------------------------------------------------

/// Constraint builder over `z = (i₀…i_{n−1}, j₀…j_{n−1}, q)`: iteration
/// `i` of access `a` and iteration `j` of access `b` touch the same
/// element, with `q` a free auxiliary for divisibility escapes. Every
/// coefficient is built in checked arithmetic; `None` rejects the nest.
struct PairRelation {
    n: usize,
    base: System,
}

impl PairRelation {
    fn build(space: &IterSpace, pair: &NonUniformPair) -> Option<PairRelation> {
        let n = space.dim();
        let nv = 2 * n + 1;
        let mut base = System::new(nv);
        // Space bounds for i (offset 0) and j (offset n).
        for off in [0, n] {
            for k in 0..n {
                let lo = space.lower(k);
                let hi = space.upper(k);
                let mut lo_c = vec![0i64; nv];
                let mut hi_c = vec![0i64; nv];
                for (l, &c) in lo.coeffs().iter().enumerate() {
                    lo_c[off + l] = c.checked_neg()?;
                }
                lo_c[off + k] = lo_c[off + k].checked_add(1)?;
                for (l, &c) in hi.coeffs().iter().enumerate() {
                    hi_c[off + l] = c;
                }
                hi_c[off + k] = hi_c[off + k].checked_sub(1)?;
                base.ge0(&lo_c, lo.constant_term().checked_neg()?);
                base.ge0(&hi_c, hi.constant_term());
            }
        }
        // Subscript equalities: a_r(i) − b_r(j) = 0 for every row.
        for (sa, sb) in pair.a.subscripts().iter().zip(pair.b.subscripts()) {
            let mut c = vec![0i64; nv];
            for (l, &x) in sa.coeffs().iter().enumerate() {
                c[l] = x;
            }
            for (l, &x) in sb.coeffs().iter().enumerate() {
                c[n + l] = x.checked_neg()?;
            }
            base.eq0(&c, sa.constant_term().checked_sub(sb.constant_term())?);
        }
        Some(PairRelation { n, base })
    }

    /// The relation restricted to lex case `(k, sigma)`: `j_l = i_l`
    /// for `l < k` and `sigma·(j_k − i_k) ≥ 1`, under which the
    /// lex-positive normalized distance is `d = sigma·(j − i)`.
    fn with_lex_case(&self, k: usize, sigma: i64) -> System {
        let n = self.n;
        let mut sys = self.base.clone();
        for l in 0..k {
            let mut c = vec![0i64; 2 * n + 1];
            c[n + l] = 1;
            c[l] = -1;
            sys.eq0(&c, 0);
        }
        let mut c = vec![0i64; 2 * n + 1];
        c[n + k] = sigma;
        c[k] = -sigma;
        sys.ge0(&c, -1);
        sys
    }

    /// Coefficients of the linear form `row·d` over `z`, where `d` is
    /// the case's normalized distance `sigma·(j − i)`.
    fn dist_form(&self, row: &[i64], sigma: i64) -> Option<Vec<i64>> {
        let n = self.n;
        let mut c = vec![0i64; 2 * n + 1];
        for (l, &p) in row.iter().enumerate() {
            let sp = p.checked_mul(sigma)?;
            c[n + l] = sp;
            c[l] = sp.checked_neg()?;
        }
        Some(c)
    }

    /// A witness `z` rendered as the conflicting iteration pair.
    fn witness_span(&self, z: &[i64]) -> Span {
        Span::PointPair {
            a: z[..self.n].to_vec(),
            b: z[self.n..2 * self.n].to_vec(),
        }
    }
}

fn to_i64_row(row: &[i128]) -> Option<Vec<i64>> {
    row.iter().map(|&x| i64::try_from(x).ok()).collect()
}

// ---------------------------------------------------------------------------
// LC016 — soundness certification
// ---------------------------------------------------------------------------

/// Certify one fold: every conflict of the pair, in every lex
/// direction, is covered by a non-negative integer combination of the
/// basis. Pushes one `Info` certificate on success; `Error`s on any
/// witness, `Unknown`, or overflow (the caller rejects the nest).
fn certify_fold(
    space: &IterSpace,
    fold: &PairFold,
    stats: &mut UniformizeStats,
    out: &mut Vec<Diagnostic>,
) -> bool {
    let pair = &fold.pair;
    let reject = |out: &mut Vec<Diagnostic>, msg: String| {
        out.push(Diagnostic::error(
            RuleId::UniformizeSoundness,
            pair_span(pair),
            msg,
        ));
        false
    };
    let Some(rel) = PairRelation::build(space, pair) else {
        stats.unknown += 1;
        return reject(
            out,
            "coefficient overflow while encoding the conflict relation; \
             the cover cannot be certified"
                .to_string(),
        );
    };
    // The escape forms, independent of the lex case: rows of P (span),
    // rows of W (sign), and (row of W, residue) pairs (divisibility).
    let cover = if fold.basis.is_empty() {
        None
    } else {
        let Some(cm) = cover_matrices(&fold.basis) else {
            stats.unknown += 1;
            return reject(
                out,
                "the synthesized basis is rank-deficient or overflows; \
                 the cover cannot be certified"
                    .to_string(),
            );
        };
        let delta = match i64::try_from(cm.delta) {
            Ok(d) => d,
            Err(_) => {
                stats.unknown += 1;
                return reject(
                    out,
                    format!(
                        "basis lattice determinant {} exceeds the certifiable range",
                        cm.delta
                    ),
                );
            }
        };
        let (Some(w), Some(p)) = (
            cm.w.iter()
                .map(|r| to_i64_row(r))
                .collect::<Option<Vec<_>>>(),
            cm.p.iter()
                .map(|r| to_i64_row(r))
                .collect::<Option<Vec<_>>>(),
        ) else {
            stats.unknown += 1;
            return reject(
                out,
                "cover matrix coefficients exceed the certifiable range".to_string(),
            );
        };
        Some((delta, w, p))
    };

    let n = space.dim();
    let mut proved = 0u64;
    let mut ok = true;
    for k in 0..n {
        for sigma in [1i64, -1] {
            let case = rel.with_lex_case(k, sigma);
            // Each escape is one conjunctive system: the conflict
            // relation in this lex direction, plus one way the
            // normalized distance evades the cover.
            let mut escapes: Vec<(System, &'static str)> = Vec::new();
            match &cover {
                None => {
                    // Empty basis: the fold claims conflict-freedom, so
                    // the relation itself must be empty.
                    escapes.push((case.clone(), "a conflict exists but the basis is empty"));
                }
                Some((delta, w, p)) => {
                    for row in p.iter().filter(|r| r.iter().any(|&x| x != 0)) {
                        let Some(form) = rel.dist_form(row, sigma) else {
                            stats.unknown += 1;
                            return reject(out, "overflow building a span escape".to_string());
                        };
                        let mut pos = case.clone();
                        pos.ge0(&form, -1); // row·d ≥ 1
                        escapes.push((pos, "its distance lies outside the basis span"));
                        let neg_form: Vec<i64> = form.iter().map(|&x| -x).collect();
                        let mut neg = case.clone();
                        neg.ge0(&neg_form, -1); // row·d ≤ −1
                        escapes.push((neg, "its distance lies outside the basis span"));
                    }
                    for row in w.iter() {
                        let Some(form) = rel.dist_form(row, sigma) else {
                            stats.unknown += 1;
                            return reject(out, "overflow building a sign escape".to_string());
                        };
                        let neg_form: Vec<i64> = form.iter().map(|&x| -x).collect();
                        let mut neg = case.clone();
                        neg.ge0(&neg_form, -1); // (W·d)_r ≤ −1
                        escapes.push((neg, "its distance needs a negative basis coefficient"));
                        for rho in 1..*delta {
                            let Some(mut form) = rel.dist_form(row, sigma) else {
                                stats.unknown += 1;
                                return reject(
                                    out,
                                    "overflow building a divisibility escape".to_string(),
                                );
                            };
                            form[2 * n] = -delta; // (W·d)_r − δ·q − ρ = 0
                            let mut res = case.clone();
                            res.eq0(&form, -rho);
                            escapes
                                .push((res, "its distance needs a fractional basis coefficient"));
                        }
                    }
                }
            }
            for (sys, why) in escapes {
                match sys.solve() {
                    Verdict::Unsat => {
                        stats.proofs += 1;
                        proved += 1;
                    }
                    Verdict::Sat(z) => {
                        stats.refuted += 1;
                        ok = false;
                        let d: Point = (0..n).map(|l| sigma * (z[n + l] - z[l])).collect();
                        out.push(Diagnostic::error(
                            RuleId::UniformizeSoundness,
                            rel.witness_span(&z),
                            format!(
                                "iterations conflict on `{}` at distance {} but {}: \
                                 the synthesized basis {:?} does not cover the \
                                 dependence relation",
                                pair.array,
                                fmt_vec(&d),
                                why,
                                fold.basis
                            ),
                        ));
                    }
                    Verdict::Unknown => {
                        stats.unknown += 1;
                        ok = false;
                        out.push(Diagnostic::error(
                            RuleId::UniformizeSoundness,
                            pair_span(pair),
                            "the Presburger core could not decide an escape system; \
                             the cover is uncertified and the nest stays rejected"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
    if ok {
        out.push(Diagnostic::info(
            RuleId::UniformizeSoundness,
            pair_span(pair),
            if fold.basis.is_empty() {
                format!(
                    "certified conflict-free: the accesses never touch a common \
                     element at any size ({proved} system(s) refuted)"
                )
            } else {
                format!(
                    "cover certified: every conflict distance is a non-negative \
                     integer combination of {:?} ({proved} escape system(s) refuted)",
                    fold.basis
                )
            },
        ));
    }
    ok
}

/// `LC016` over a whole [`Uniformization`]: certify every fold.
/// `Ok` holds one `Info` certificate per pair; `Err` holds the error
/// diagnostics of the first failing pair (plus certificates of pairs
/// already proven).
pub fn certify_cover(
    nest: &LoopNest,
    u: &Uniformization,
    stats: &mut UniformizeStats,
) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    let mut out = Vec::new();
    stats.pairs_folded += u.pairs.len() as u64;
    stats.vectors_synthesized += u.synthesized().len() as u64;
    for fold in &u.pairs {
        if !certify_fold(nest.space(), fold, stats, &mut out) {
            return Err(out);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// LC017 — tightness
// ---------------------------------------------------------------------------

/// Does some in-space edge `x → x + v` fail to be a conflict of `pair`
/// in either access order? `Some(x)` is the over-approximation witness.
fn overapprox_witness(space: &IterSpace, pair: &NonUniformPair, v: &[i64]) -> Option<Point> {
    let n = space.dim();
    let dot = |coeffs: &[i64]| -> Option<i64> {
        let mut acc: i128 = 0;
        for (&c, &x) in coeffs.iter().zip(v) {
            acc = acc.checked_add((c as i128).checked_mul(x as i128)?)?;
        }
        i64::try_from(acc).ok()
    };
    let mut base = System::new(n);
    for k in 0..n {
        let lo = space.lower(k);
        let hi = space.upper(k);
        let mut lo_c: Vec<i64> = lo.coeffs().iter().map(|&c| -c).collect();
        lo_c[k] = lo_c[k].checked_add(1)?;
        let mut hi_c: Vec<i64> = hi.coeffs().to_vec();
        hi_c[k] = hi_c[k].checked_sub(1)?;
        // x in space…
        base.ge0(&lo_c, lo.constant_term().checked_neg()?);
        base.ge0(&hi_c, hi.constant_term());
        // …and x + v in space, rewritten over x.
        base.ge0(
            &lo_c,
            v[k].checked_sub(dot(lo.coeffs())?)?
                .checked_sub(lo.constant_term())?,
        );
        base.ge0(
            &hi_c,
            hi.constant_term()
                .checked_add(dot(hi.coeffs())?)?
                .checked_sub(v[k])?,
        );
    }
    // Per order, the non-conflict disjuncts: some subscript row differs
    // by at least 1 in one direction.
    let order_disjuncts = |src_a: bool| -> Option<Vec<(Vec<i64>, i64)>> {
        let mut ds = Vec::new();
        for (sa, sb) in pair.a.subscripts().iter().zip(pair.b.subscripts()) {
            // f(x) = a_r(at) − b_r(at') with {at, at'} = {x, x+v}.
            let coeffs: Vec<i64> = sa
                .coeffs()
                .iter()
                .zip(sb.coeffs())
                .map(|(&ca, &cb)| ca.checked_sub(cb))
                .collect::<Option<Vec<i64>>>()?;
            let shift = if src_a {
                // a at x, b at x+v.
                sa.constant_term()
                    .checked_sub(sb.constant_term())?
                    .checked_sub(dot(sb.coeffs())?)?
            } else {
                // a at x+v, b at x.
                sa.constant_term()
                    .checked_sub(sb.constant_term())?
                    .checked_add(dot(sa.coeffs())?)?
            };
            for sigma in [1i64, -1] {
                let c: Vec<i64> = coeffs
                    .iter()
                    .map(|&x| x.checked_mul(sigma))
                    .collect::<Option<Vec<i64>>>()?;
                ds.push((c, shift.checked_mul(sigma)?.checked_sub(1)?)); // σ·f ≥ 1
            }
        }
        Some(ds)
    };
    let d1 = order_disjuncts(true)?;
    let d2 = order_disjuncts(false)?;
    for (c1, k1) in &d1 {
        for (c2, k2) in &d2 {
            let mut sys = base.clone();
            sys.ge0(c1, *k1);
            sys.ge0(c2, *k2);
            if let Verdict::Sat(x) = sys.solve() {
                return Some(x);
            }
        }
    }
    None
}

/// The small-nest schedule census attached to the first `LC017`
/// warning: candidate `Π ∈ [−2,2]ⁿ` legal for the *true* dependence
/// relation vs. legal for the folded vector set, with the best step
/// count of each side. `None` when the nest is too deep (n > 3) or a
/// verdict came back `Unknown`.
fn pi_census(nest: &LoopNest, u: &Uniformization) -> Option<String> {
    let n = nest.dim();
    if n > 3 || n == 0 {
        return None;
    }
    let (uniform_deps, _) =
        loom_loopir::extract_dependences_relaxed(nest, DepOptions::default()).ok()?;
    let uniform_vectors: Vec<Point> = uniform_deps
        .iter()
        .map(|d| d.vector.clone())
        .filter(|v| v.iter().any(|&x| x != 0))
        .collect();
    let rels: Vec<PairRelation> = u
        .pairs
        .iter()
        .map(|f| PairRelation::build(nest.space(), &f.pair))
        .collect::<Option<Vec<_>>>()?;
    let mut candidates = vec![vec![0i64; n]];
    for _ in 0..n {
        candidates = candidates
            .into_iter()
            .flat_map(|c| {
                (-2..=2).map(move |x| {
                    let mut c = c.clone();
                    c.push(x);
                    c.remove(0);
                    c
                })
            })
            .collect();
    }
    let mut true_count = 0u64;
    let mut folded_count = 0u64;
    let mut best_true: Option<i64> = None;
    let mut best_folded: Option<i64> = None;
    for c in candidates {
        if c.iter().all(|&x| x == 0) {
            continue;
        }
        let pi = TimeFn::new(c.clone());
        if pi.is_legal_for(&u.vectors) {
            folded_count += 1;
            let s = pi.steps(nest.space());
            best_folded = Some(best_folded.map_or(s, |b: i64| b.min(s)));
        }
        if !pi.is_legal_for(&uniform_vectors) {
            continue;
        }
        // Legal for the true relation: no realized conflict distance
        // with Π·d ≤ 0, in any lex direction of any pair.
        let mut legal = true;
        'pairs: for rel in &rels {
            for k in 0..n {
                for sigma in [1i64, -1] {
                    let mut sys = rel.with_lex_case(k, sigma);
                    let form = rel.dist_form(&c, sigma)?;
                    let neg: Vec<i64> = form.iter().map(|&x| -x).collect();
                    sys.ge0(&neg, 0); // Π·d ≤ 0
                    match sys.solve() {
                        Verdict::Unsat => {}
                        Verdict::Sat(_) => {
                            legal = false;
                            break 'pairs;
                        }
                        Verdict::Unknown => return None,
                    }
                }
            }
        }
        if legal {
            true_count += 1;
            let s = pi.steps(nest.space());
            best_true = Some(best_true.map_or(s, |b: i64| b.min(s)));
        }
    }
    let steps = |b: Option<i64>| b.map_or("-".to_string(), |s| s.to_string());
    Some(format!(
        "legal-\u{3a0} census over [-2,2]^{n}: true relation admits {true_count} \
         (best {} step(s)), folded set admits {folded_count} (best {} step(s))",
        steps(best_true),
        steps(best_folded),
    ))
}

/// `LC017`: warn on every synthesized vector whose cover admits
/// never-conflicting iteration pairs, with the parallelism census as
/// context on the first warning.
pub fn check_tightness(
    nest: &LoopNest,
    u: &Uniformization,
    stats: &mut UniformizeStats,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut census: Option<Option<String>> = None;
    for fold in &u.pairs {
        for v in &fold.basis {
            let Some(x) = overapprox_witness(nest.space(), &fold.pair, v) else {
                continue;
            };
            stats.tightness_warnings += 1;
            let y: Point = x.iter().zip(v).map(|(&a, &b)| a + b).collect();
            let mut msg = format!(
                "synthesized vector {} over-approximates: iterations {} and {} \
                 never conflict on `{}`, yet the folded nest synchronizes them",
                fmt_vec(v),
                fmt_vec(&x),
                fmt_vec(&y),
                fold.pair.array,
            );
            if out.is_empty() {
                let c = census.get_or_insert_with(|| pi_census(nest, u));
                if let Some(c) = c {
                    msg.push_str("; ");
                    msg.push_str(c);
                }
            }
            out.push(Diagnostic::warning(
                RuleId::UniformizeTightness,
                pair_span(&fold.pair),
                msg,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// LC018 — legality handoff
// ---------------------------------------------------------------------------

/// `LC018`: `Π·v ≥ 1` for every synthesized vector — the folded nest
/// re-passes the `LC001`/`LC009` legality argument at all sizes.
pub fn check_folded_legality(pi: &TimeFn, u: &Uniformization) -> Vec<Diagnostic> {
    crate::legality::check_legality(pi, &u.synthesized())
        .into_iter()
        .map(|mut d| {
            d.rule = RuleId::UniformizeLegality;
            d.message = format!("synthesized {}", d.message);
            d
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// Fold and certify in one step: `Ok` is the certified uniformization
/// plus its certificate/tightness diagnostics, `Err` the rejection
/// diagnostics (fold failure or refuted/undecided cover).
fn certified_uniformization(
    nest: &LoopNest,
    opts: DepOptions,
    stats: &mut UniformizeStats,
) -> Result<(Uniformization, Vec<Diagnostic>), Vec<Diagnostic>> {
    let u = match uniformize(nest, opts) {
        Ok(u) => u,
        Err(FoldError::Extract(e)) => {
            return Err(vec![Diagnostic::error(
                RuleId::UniformizeSoundness,
                Span::Nest,
                format!("dependence extraction failed ({e}); nothing to fold"),
            )]);
        }
        Err(e @ FoldError::NoCover { .. }) => {
            return Err(vec![Diagnostic::error(
                RuleId::UniformizeSoundness,
                Span::Nest,
                format!("{e}"),
            )]);
        }
    };
    let mut diags = certify_cover(nest, &u, stats)?;
    diags.extend(check_tightness(nest, &u, stats));
    Ok((u, diags))
}

/// The pipeline's admission entry for nests the uniform front end
/// rejects: fold, certify (`LC016`), and report tightness (`LC017`).
///
/// `Ok` admits the nest — the folded dependence set in the returned
/// [`Uniformization`] is safe to hand to the partitioner, and the
/// diagnostics (certificates and warnings, never errors) belong in the
/// pipeline's report. `Err` is the full rejection report: the failed
/// obligations plus the classic `LC010` pairwise evidence.
pub fn admit_uniformized(
    nest: &LoopNest,
    opts: DepOptions,
    stats: &mut UniformizeStats,
) -> Result<(Uniformization, Vec<Diagnostic>), Report> {
    match certified_uniformization(nest, opts, stats) {
        Ok(ok) => Ok(ok),
        Err(mut diags) => {
            diags.extend(crate::symbolic::scan_nonuniform_pairs(nest));
            Err(Report::from_diagnostics(diags))
        }
    }
}

/// The `LC010` non-uniform arm with uniformization: certify-and-admit
/// when possible (comparing any declared `D` against the *folded*
/// vector set), fall back to the budgeted pairwise scan on failure.
/// Returns the diagnostics plus the certified uniformization when the
/// nest was admitted.
pub(crate) fn nonuniform_analysis(
    nest: &LoopNest,
    declared: Option<&[Point]>,
    stats: &mut UniformizeStats,
) -> (Vec<Diagnostic>, Option<Uniformization>) {
    match certified_uniformization(nest, DepOptions::default(), stats) {
        Ok((u, mut diags)) => {
            if let Some(declared) = declared {
                diags.extend(crate::symbolic::compare_vector_sets(&u.deps, declared));
            }
            (diags, Some(u))
        }
        Err(mut diags) => {
            diags.extend(crate::symbolic::scan_nonuniform_pairs(nest));
            (diags, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use loom_loopir::{Access, Aff, Stmt};

    fn nest_1d(name: &str, extent: i64, write: Access, reads: Vec<Access>) -> LoopNest {
        LoopNest::new(
            name,
            IterSpace::rect(&[extent]).unwrap(),
            vec![Stmt::assign(write, reads)],
        )
        .unwrap()
    }

    fn a2i(extent: i64) -> LoopNest {
        nest_1d(
            "rec",
            extent,
            Access::new("A", vec![Aff::new(vec![2], 0)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        )
    }

    #[test]
    fn a2i_cover_certified_and_overapprox_warned() {
        let nest = a2i(8);
        let mut stats = UniformizeStats::default();
        let (u, diags) =
            certified_uniformization(&nest, DepOptions::default(), &mut stats).expect("admitted");
        assert_eq!(u.vectors, vec![vec![1]]);
        assert!(diags.iter().any(|d| d.rule == RuleId::UniformizeSoundness
            && d.severity == Severity::Info
            && d.message.contains("cover certified")));
        // v = (1) admits x → x+1 edges that never conflict (e.g. x = 0).
        assert!(diags.iter().any(|d| d.rule == RuleId::UniformizeTightness
            && d.severity == Severity::Warning
            && d.message.contains("census")));
        assert!(stats.proofs > 0);
        assert_eq!(stats.refuted, 0);
        assert_eq!(stats.unknown, 0);
    }

    #[test]
    fn a3i_divisibility_escapes_refuted() {
        // A[3i] = A[i]: basis {(2)}, δ = 4 — the residue systems
        // 2d ≡ ρ (mod 4) must all be Unsat since realized d is even.
        let nest = nest_1d(
            "scale",
            16,
            Access::new("A", vec![Aff::new(vec![3], 0)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        );
        let mut stats = UniformizeStats::default();
        let (u, _) =
            certified_uniformization(&nest, DepOptions::default(), &mut stats).expect("admitted");
        assert_eq!(u.vectors, vec![vec![2]]);
        assert_eq!(stats.refuted, 0);
        assert_eq!(stats.unknown, 0);
    }

    #[test]
    fn coupled_2d_certified() {
        let nest = LoopNest::new(
            "diag2d",
            IterSpace::rect(&[8, 8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![Aff::var(2, 0), Aff::new(vec![1, 1], 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )],
        )
        .unwrap();
        let mut stats = UniformizeStats::default();
        let (u, diags) =
            certified_uniformization(&nest, DepOptions::default(), &mut stats).expect("admitted");
        assert_eq!(u.vectors, vec![vec![0, 1]]);
        assert!(diags.iter().any(|d| d.rule == RuleId::UniformizeTightness));
        assert_eq!(stats.refuted + stats.unknown, 0);
    }

    #[test]
    fn wrong_basis_is_refuted_with_witness() {
        // Hand the certifier a deliberately wrong cover: basis {(2)}
        // for A[2i] = A[i], whose realized distances include odd values.
        let nest = a2i(8);
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        let mut bad = u.clone();
        bad.pairs[0].basis = vec![vec![2]];
        let mut stats = UniformizeStats::default();
        let err = certify_cover(&nest, &bad, &mut stats).expect_err("refuted");
        assert!(err
            .iter()
            .any(|d| d.severity == Severity::Error
                && d.message.contains("fractional basis coefficient")));
        assert!(stats.refuted > 0);
    }

    #[test]
    fn empty_basis_conflict_freedom_proven() {
        // A[2i] written, A[4i+1] read: disjoint parities, empty basis.
        let nest = nest_1d(
            "disjoint",
            8,
            Access::new("A", vec![Aff::new(vec![2], 0)]),
            vec![Access::new("A", vec![Aff::new(vec![4], 1)])],
        );
        let mut stats = UniformizeStats::default();
        let (u, diags) =
            certified_uniformization(&nest, DepOptions::default(), &mut stats).expect("admitted");
        assert!(u.vectors.is_empty());
        assert!(diags
            .iter()
            .any(|d| d.message.contains("certified conflict-free")));
    }

    #[test]
    fn empty_basis_with_real_conflicts_refuted() {
        // Claim conflict-freedom for a pair that does conflict: the
        // bare relation is Sat and the claim dies with a witness.
        let nest = a2i(8);
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        let mut bad = u.clone();
        bad.pairs[0].basis = Vec::new();
        let mut stats = UniformizeStats::default();
        let err = certify_cover(&nest, &bad, &mut stats).expect_err("refuted");
        assert!(err.iter().any(|d| d.message.contains("basis is empty")));
    }

    #[test]
    fn folded_legality_retags_lc018() {
        let nest = a2i(8);
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        let bad_pi = TimeFn::new(vec![-1]);
        let ds = check_folded_legality(&bad_pi, &u);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, RuleId::UniformizeLegality);
        let good_pi = TimeFn::new(vec![1]);
        assert!(check_folded_legality(&good_pi, &u).is_empty());
    }

    #[test]
    fn rank_mismatch_rejected_through_admission() {
        let nest = LoopNest::new(
            "ranks",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 2, &[(0, 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )],
        )
        .unwrap();
        let mut stats = UniformizeStats::default();
        let report =
            admit_uniformized(&nest, DepOptions::default(), &mut stats).expect_err("rejected");
        assert!(report.has_errors());
        // The rejection carries both the fold failure and LC010 evidence.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.rule == RuleId::UniformizeSoundness));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.rule == RuleId::AccessDependence));
    }

    #[test]
    fn uniform_nest_admits_trivially() {
        let nest = nest_1d(
            "uniform",
            8,
            Access::simple("A", 1, &[(0, 1)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        );
        let mut stats = UniformizeStats::default();
        let (u, diags) =
            admit_uniformized(&nest, DepOptions::default(), &mut stats).expect("admitted");
        assert!(u.is_trivial());
        assert!(diags.is_empty());
        assert_eq!(stats.pairs_folded, 0);
    }
}
