//! `loom` — command-line driver for the Sheu–Tai partitioning and
//! mapping pipeline.
//!
//! ```text
//! loom workloads
//! loom partition --workload matmul --size 4 [--pi 1,1,1] [--grouping 1]
//! loom map       --workload matvec --size 16 --cube 2
//! loom simulate  --workload sor --size 16 --cube 3
//!                [--t-calc 1 --t-start 50 --t-comm 5] [--batch] [--contention]
//!                [--fault-plan plan.json --fault-seed 7 --recovery remap]
//! loom codegen   --workload l1 --size 4 --cube 1 [--run]
//! loom check     --workload sor --size 8 --cube 2 [--symbolic]
//!                [--format human|json|sarif] [--allow LC004]
//! loom viz       --workload sor --size 8 [--dot]
//! loom explore   --workload matvec --size 16 [--pi-bound 1] [--top 10]
//!                [--threads 4] [--no-prune] [--bench-out bench.json]
//! loom profile   --workload matvec --size 16 --cube 2 [--top 3] [--json]
//!                [--trace-out t.json] [--metrics-out m.json] [--flame-out f.txt]
//! loom obs diff  old.json new.json [--threshold 1] [--warn-only] [--json]
//! loom table1    [--m 1024]
//! ```
//!
//! Setting `LOOM_FLIGHT_DIR` makes every pipeline-running subcommand
//! flush its flight-recorder ring (JSONL) into that directory on exit.

mod args;

use args::Args;
use loom_core::analytic::table1_rows;
use loom_core::pipeline::MachineOptions;
use loom_core::report::Table;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;
use loom_obs::{FlightRecorder, Json, Recorder};
use loom_workloads::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: loom <command> [flags]\n\
         commands:\n\
         \x20 workloads                         list built-in workloads\n\
         \x20 partition --workload W --size S   run Algorithm 1, print blocks\n\
         \x20 map       --workload W --cube N   run Algorithms 1+2, print placement\n\
         \x20 simulate  --workload W --cube N   full pipeline + machine simulation\n\
         \x20 sim       alias for simulate\n\
         \x20 codegen   --workload W --cube N   emit SPMD pseudo-code [--run verifies]\n\
         \x20 check     --workload W --cube N   static verifier [--symbolic|--interleave]\n\
         \x20           [--format human|json|sarif] [--allow IDS] [--explain LC0NN]\n\
         \x20           [--corrupt drop-send|dup-send|drop-recv|swap] [--corrupt-seed N]\n\
         \x20 viz       --workload W            ASCII block/wavefront grids [--dot]\n\
         \x20 explore   --workload W            rank (Π, grouping, N) by simulated cost\n\
         \x20           [--threads T] [--no-prune] [--bench-out FILE] [--metrics-out FILE]\n\
         \x20 profile   --workload W --cube N   critical-path profile of a simulated run\n\
         \x20           [--top K] [--json] [--trace-out FILE] [--flame-out FILE]\n\
         \x20 obs diff  OLD NEW                 compare two bench/metrics JSON documents\n\
         \x20           [--threshold B] [--warn-only] [--json]\n\
         \x20 table1    [--m M]                 the paper's Table I\n\
         common flags: --size S (default 8), --size2 S (2nd extent), --pi a,b,…\n\
         output flags (simulate/check/explore/profile):\n\
         \x20               --metrics-out FILE (counters + simulator metrics JSON),\n\
         \x20               --trace-out FILE (Chrome/Perfetto trace JSON),\n\
         \x20               --flame-out FILE (collapsed-stack flamegraph export)\n\
         simulate flags: --t-calc/--t-start/--t-comm, --batch, --contention,\n\
         \x20               --mesh RxC | --ring N (instead of --cube),\n\
         \x20               --validate (replay the trace through verify_trace)\n\
         fault flags:    --fault-plan FILE (JSON fault plan, see docs/RESILIENCE.md),\n\
         \x20               --fault-seed N (override the plan's noise seed),\n\
         \x20               --recovery abort|retry|remap (default retry),\n\
         \x20               --degradation-out FILE (degradation report JSON)"
    );
    std::process::exit(2)
}

/// Parse `--file` into a nest, exiting with a usage error on I/O or
/// syntax problems.
fn parse_file_nest(path: &str) -> loom_loopir::LoopNest {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2)
    });
    let name = path.rsplit('/').next().unwrap_or("nest").to_string();
    loom_loopir::parse::parse_nest(&name, &src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2)
    })
}

/// `--pi` if given, else the optimal legal time function for `deps`.
fn pick_pi(a: &Args, nest: &loom_loopir::LoopNest, deps: &[Vec<i64>], label: &str) -> Vec<i64> {
    a.int_list_flag("pi").unwrap_or_else(|| {
        loom_hyperplane::find_optimal(deps, nest.space(), loom_hyperplane::SearchConfig::default())
            .unwrap_or_else(|e| {
                eprintln!("{label}: no legal time function: {e}");
                std::process::exit(1)
            })
            .coeffs()
            .to_vec()
    })
}

fn pick_workload(a: &Args) -> Workload {
    if let Some(path) = a.flags.get("file") {
        let nest = parse_file_nest(path);
        let deps = loom_loopir::deps::dependence_vectors(&nest, loom_loopir::DepOptions::default())
            .unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2)
            });
        let pi = pick_pi(a, &nest, &deps, path);
        return Workload { nest, deps, pi };
    }
    let size = a.int_flag("size", 8);
    let size2 = a.int_flag("size2", size);
    match a.str_flag("workload", "l1").as_str() {
        "l1" => loom_workloads::l1::workload(size),
        "matmul" => loom_workloads::matmul::workload(size),
        "matvec" => loom_workloads::matvec::workload(size),
        "conv" | "conv1d" => loom_workloads::conv::workload(size, size2.min(size)),
        "sor" | "stencil" => loom_workloads::sor::workload(size, size2),
        "transitive" | "tc" => loom_workloads::transitive::workload(size),
        "dft" => loom_workloads::dft::workload(size),
        "conv2d" => loom_workloads::conv2d::workload(size, size2.min(size)),
        "heat2d" | "heat" => loom_workloads::heat2d::workload(size, size2),
        "triangular" | "tri" => loom_workloads::triangular::workload(size),
        other => {
            eprintln!("unknown workload `{other}`; run `loom workloads`");
            std::process::exit(2)
        }
    }
}

fn machine_params(a: &Args) -> MachineParams {
    MachineParams {
        t_calc: a.int_flag("t-calc", 1).max(0) as u64,
        t_start: a.int_flag("t-start", 50).max(0) as u64,
        t_comm: a.int_flag("t-comm", 5).max(0) as u64,
        t_recv: a.int_flag("t-recv", 0).max(0) as u64,
    }
}

fn pick_target(a: &Args) -> Option<loom_core::Target> {
    if let Some(mesh) = a.flags.get("mesh") {
        let parts: Vec<&str> = mesh.split(['x', 'X']).collect();
        if let [r, c] = parts[..] {
            if let (Ok(rows), Ok(cols)) = (r.parse(), c.parse()) {
                return Some(loom_core::Target::Mesh { rows, cols });
            }
        }
        eprintln!("error: --mesh expects RxC (e.g. 2x4)");
        std::process::exit(2)
    }
    if let Some(ring) = a.flags.get("ring") {
        match ring.parse() {
            Ok(n) => return Some(loom_core::Target::Ring(n)),
            Err(_) => {
                eprintln!("error: --ring expects an integer");
                std::process::exit(2)
            }
        }
    }
    None
}

/// Build the fault configuration from `--fault-plan` / `--fault-seed`
/// / `--recovery`. The plan is statically validated (rule `LC008`)
/// against the machine the run will target before it is accepted; any
/// error diagnostic refuses the run.
fn fault_config(a: &Args) -> Option<loom_machine::FaultConfig> {
    let path = a.flags.get("fault-plan")?;
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2)
    });
    let doc = loom_obs::Json::parse(&src).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(2)
    });
    let plan = loom_machine::FaultPlan::from_json(&doc).unwrap_or_else(|e| {
        eprintln!("{path}: invalid fault plan: {e}");
        std::process::exit(2)
    });
    let topology = pick_target(a)
        .unwrap_or(loom_core::Target::Hypercube(
            a.int_flag("cube", 1).max(0) as usize
        ))
        .topology();
    // Route the LC008 diagnostics through a Report so `--allow LC008`
    // downgrades them exactly like every other rule: suppression and
    // exit-code policy are uniform across LC001–LC015.
    let mut report =
        loom_check::Report::from_diagnostics(loom_check::check_fault_plan(&plan, &topology));
    apply_allow(a, &mut report);
    for d in report.diagnostics() {
        eprintln!("{path}: {d}");
    }
    if report.has_errors() {
        std::process::exit(1)
    }
    let policy: loom_machine::RecoveryPolicy = a
        .str_flag("recovery", "retry")
        .parse()
        .unwrap_or_else(|e: String| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
    let mut fc = loom_machine::FaultConfig::new(plan, policy);
    if a.flags.contains_key("fault-seed") {
        fc.seed_override = Some(a.int_flag("fault-seed", 0).max(0) as u64);
    }
    Some(fc)
}

fn run_pipeline(a: &Args, w: &Workload, with_machine: bool) -> loom_core::PipelineOutput {
    run_pipeline_with(a, w, with_machine, &Recorder::disabled())
}

fn run_pipeline_with(
    a: &Args,
    w: &Workload,
    with_machine: bool,
    recorder: &Recorder,
) -> loom_core::PipelineOutput {
    let config = PipelineConfig {
        time_fn: a.int_list_flag("pi").or(Some(w.pi.clone())),
        cube_dim: a.int_flag("cube", 1).max(0) as usize,
        target: pick_target(a),
        partition: loom_partition::PartitionConfig {
            grouping_choice: a.flags.get("grouping").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --grouping expects an index");
                    std::process::exit(2)
                })
            }),
            seed: None,
        },
        machine: with_machine.then(|| MachineOptions {
            params: machine_params(a),
            batch_messages: a.switch("batch"),
            link_contention: a.switch("contention"),
            record_trace: a.flags.contains_key("trace-out"),
            collect_metrics: a.flags.contains_key("metrics-out")
                || a.flags.contains_key("trace-out"),
            validate_trace: a.switch("validate"),
            faults: fault_config(a),
            ..Default::default()
        }),
        ..Default::default()
    };
    Pipeline::new(w.nest.clone())
        .run_with(&config, recorder)
        .unwrap_or_else(|e| {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1)
        })
}

/// An enabled recorder whose flight ring honors `LOOM_FLIGHT_DIR`.
fn obs_recorder() -> Recorder {
    Recorder::enabled_with_flight(FlightRecorder::from_env())
}

/// Flush the recorder's flight ring to `LOOM_FLIGHT_DIR` (no-op when
/// the variable is unset).
fn flush_flight(rec: &Recorder, name: &str) {
    if let Some(path) = rec.flight().flush_to_env_dir(name) {
        eprintln!("flight log written to {}", path.display());
    }
}

/// Write the collapsed-stack span export for `--flame-out`.
fn write_flame(rec: &Recorder, path: &str) {
    write_out(
        path,
        loom_obs::flight::collapsed_stacks(&rec.spans()),
        "flamegraph",
    );
}

fn write_out(path: &str, contents: String, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => println!("{what} written to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        }
    }
}

fn cmd_workloads() {
    let mut t = Table::new(["name", "depth", "D", "paper role"]);
    for (name, w, role) in [
        ("l1", loom_workloads::l1::workload(4), "§II running example"),
        (
            "matmul",
            loom_workloads::matmul::workload(4),
            "§III Example 2",
        ),
        (
            "matvec",
            loom_workloads::matvec::workload(8),
            "§IV / Table I",
        ),
        (
            "conv1d",
            loom_workloads::conv::workload(8, 4),
            "§I motivation",
        ),
        ("sor", loom_workloads::sor::workload(6, 6), "extension"),
        (
            "transitive",
            loom_workloads::transitive::workload(4),
            "§I motivation",
        ),
        ("dft", loom_workloads::dft::workload(8), "§I motivation"),
        (
            "conv2d",
            loom_workloads::conv2d::workload(4, 2),
            "extension (4-deep)",
        ),
        (
            "triangular",
            loom_workloads::triangular::workload(6),
            "extension (affine bounds)",
        ),
        (
            "heat2d",
            loom_workloads::heat2d::workload(3, 4),
            "extension (negative deps)",
        ),
    ] {
        t.row([
            name.to_string(),
            format!("{}", w.nest.dim()),
            format!("{:?}", w.deps),
            role.to_string(),
        ]);
    }
    println!("{t}");
}

fn cmd_partition(a: &Args) {
    let w = pick_workload(a);
    // Partitioning is machine-independent; default to the 1-processor
    // cube so a small block count never fails the mapping stage.
    let mut a2 = a.clone();
    a2.flags.entry("cube".into()).or_insert_with(|| "0".into());
    let out = run_pipeline(&a2, &w, false);
    println!("{}", w.nest);
    println!("D = {:?}", out.deps);
    println!("{} ({} steps)", out.pi, out.pi.steps(w.nest.space()));
    let p = &out.partitioning;
    println!(
        "r = {}, beta = {}, {} projected points -> {} blocks (largest {})",
        p.vectors().r,
        p.vectors().beta,
        p.projected().len(),
        p.num_blocks(),
        p.max_block_size()
    );
    println!(
        "arcs: {} total, {} interblock ({:.0}%)",
        out.comm.total_arcs,
        out.comm.interblock_arcs,
        100.0 * out.comm.interblock_fraction()
    );
    if a.switch("blocks") {
        for (b, block) in p.blocks().iter().enumerate() {
            let pts: Vec<String> = block
                .iter()
                .map(|&id| format!("{:?}", p.structure().points()[id]))
                .collect();
            println!("  B{b}: {}", pts.join(" "));
        }
    }
    let violations = loom_partition::laws::check_all(p);
    println!(
        "laws: {}",
        if violations.is_empty() {
            "all hold".into()
        } else {
            format!("{violations:?}")
        }
    );
}

fn cmd_map(a: &Args) {
    let w = pick_workload(a);
    let out = run_pipeline(a, &w, false);
    let mut t = Table::new(["block", "size", "processor"]);
    for (b, &proc) in out.mapping.assignment().iter().enumerate() {
        t.row([
            format!("B{b}"),
            format!("{}", out.partitioning.block(b).len()),
            format!("P{proc:0w$b}", w = out.mapping.cube().dim().max(1)),
        ]);
    }
    println!("{t}");
    let q = loom_mapping::metrics::evaluate(&out.tig, out.mapping.assignment(), out.mapping.cube());
    println!("quality: {q}");
}

fn cmd_simulate(a: &Args) {
    let w = pick_workload(a);
    let rec = obs_recorder();
    let out = run_pipeline_with(a, &w, true, &rec);
    let sim = out.sim.as_ref().expect("machine enabled");
    let params = machine_params(a);
    println!(
        "{} on {:?} ({} procs), t_calc={} t_start={} t_comm={}{}{}",
        w.nest.name(),
        out.target,
        out.placement.num_procs(),
        params.t_calc,
        params.t_start,
        params.t_comm,
        if a.switch("batch") { ", batched" } else { "" },
        if a.switch("contention") {
            ", contention"
        } else {
            ""
        },
    );
    println!("makespan          = {}", sim.makespan);
    println!("busiest processor = {}", sim.max_proc_occupancy());
    println!("messages, words   = {}, {}", sim.messages, sim.words);
    let mut t = Table::new(["proc", "compute", "comm", "total"]);
    for p in 0..sim.compute.len() {
        t.row([
            format!("P{p}"),
            format!("{}", sim.compute[p]),
            format!("{}", sim.comm[p]),
            format!("{}", sim.compute[p] + sim.comm[p]),
        ]);
    }
    println!("{t}");
    println!(
        "utilization:\n{}",
        loom_viz::utilization_chart(&sim.compute, &sim.comm, sim.makespan, 40)
    );
    if let Some(deg) = sim.degradation.as_ref() {
        println!(
            "faults: {} injected, {} hit ({} drops, {} corruptions, {} delays)",
            deg.faults_injected, deg.faults_hit, deg.drops, deg.corruptions, deg.delays
        );
        println!(
            "recovery: {} retries ({} words resent), {} reroutes, {} crashes, {} tasks remapped",
            deg.retries, deg.retransmitted_words, deg.reroutes, deg.crashes, deg.remapped_tasks
        );
        println!(
            "degradation: makespan {} -> {} (+{:.1}%)",
            deg.baseline_makespan,
            deg.degraded_makespan,
            100.0 * deg.makespan_inflation()
        );
        if let Some(path) = a.flags.get("degradation-out") {
            write_out(path, deg.to_json().render_pretty(), "degradation report");
        }
    }
    if a.switch("validate") {
        // A violating trace already failed the pipeline with
        // PipelineError::Trace, so reaching here means a clean replay.
        println!("trace validated: no violations");
    }
    let obs = a.obs_flags();
    if let Some(path) = &obs.metrics_out {
        let doc = loom_core::obs_export::metrics_json(&rec, Some(sim));
        write_out(path, doc.render_pretty(), "metrics");
    }
    if let Some(path) = &obs.trace_out {
        match loom_machine::trace::chrome_trace(sim, out.placement.num_procs()) {
            Some(doc) => write_out(path, doc.render_pretty(), "trace"),
            None => {
                eprintln!("internal error: no trace recorded despite --trace-out");
                std::process::exit(1)
            }
        }
    }
    if let Some(path) = &obs.flame_out {
        write_flame(&rec, path);
    }
    flush_flight(&rec, "simulate");
}

fn cmd_codegen(a: &Args) {
    let w = pick_workload(a);
    let out = run_pipeline(a, &w, false);
    let cg = loom_codegen::generate(
        &w.nest,
        &out.partitioning,
        out.mapping.assignment(),
        out.mapping.cube().len(),
    )
    .unwrap_or_else(|e| {
        eprintln!("codegen refused: {e}");
        std::process::exit(1)
    });
    println!("{}", loom_codegen::render::render(&w.nest, &cg));
    println!(
        "{} computes, {} messages",
        cg.program.num_computes(),
        cg.program.num_messages()
    );
    if a.switch("run") {
        use loom_exec::memory::address_hash_init;
        let result = loom_codegen::run(&w.nest, &cg, &address_hash_init).unwrap_or_else(|e| {
            eprintln!("SPMD run failed: {e}");
            std::process::exit(1)
        });
        let serial = loom_exec::sequential(&w.nest, &address_hash_init);
        match loom_exec::equivalent(&result.gathered, &serial) {
            Ok(()) => println!("verified: bit-identical to sequential execution"),
            Err(d) => {
                eprintln!("DIVERGED: {d:?}");
                std::process::exit(1)
            }
        }
    }
}

/// Render a check report in the selected `--format` (`human`, `json`,
/// or `sarif`; the legacy `--json` switch still selects JSON).
fn render_report(a: &Args, report: &loom_check::Report) {
    let format = if a.switch("json") {
        "json".to_string()
    } else {
        a.str_flag("format", "human")
    };
    match format.as_str() {
        "human" => print!("{}", report.render_human()),
        "json" => println!("{}", report.to_json().render_pretty()),
        "sarif" => {
            let artifact = a.flags.get("file").map(|s| s.as_str());
            println!("{}", report.to_sarif(artifact).render_pretty())
        }
        other => {
            eprintln!("unknown --format `{other}` (expected human, json, or sarif)");
            std::process::exit(2)
        }
    }
}

fn apply_allow(a: &Args, report: &mut loom_check::Report) {
    if let Some(allow) = a.flags.get("allow") {
        let codes: Vec<String> = allow
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        report.allow(&codes);
    }
}

/// Parse `--corrupt MODE` into a program mutation.
fn parse_mutation(name: &str) -> loom_check::Mutation {
    match name {
        "drop-send" => loom_check::Mutation::DropSend,
        "dup-send" => loom_check::Mutation::DupSend,
        "drop-recv" => loom_check::Mutation::DropRecv,
        "swap" => loom_check::Mutation::SwapSendEarlier,
        other => {
            eprintln!(
                "unknown --corrupt `{other}` (expected drop-send, dup-send, drop-recv, or swap)"
            );
            std::process::exit(2)
        }
    }
}

fn cmd_check(a: &Args) {
    if let Some(code) = a.flags.get("explain") {
        match loom_check::explain(code) {
            Some(text) => {
                print!("{text}");
                std::process::exit(0)
            }
            None => {
                eprintln!("unknown rule `{code}`; known rules are LC001 through LC015");
                std::process::exit(2)
            }
        }
    }
    let symbolic = a.switch("symbolic");
    let interleave = a.switch("interleave") || a.flags.contains_key("corrupt");
    if symbolic && interleave {
        eprintln!("--symbolic and --interleave/--corrupt are mutually exclusive");
        std::process::exit(2)
    }
    // Load `--file` nests by hand: a non-uniform nest must come back as
    // an LC010 report on stdout, not a front-end abort on stderr.
    let w = if let Some(path) = a.flags.get("file") {
        let nest = parse_file_nest(path);
        match loom_loopir::deps::dependence_vectors(&nest, loom_loopir::DepOptions::default()) {
            Ok(deps) => {
                let pi = pick_pi(a, &nest, &deps, path);
                Workload { nest, deps, pi }
            }
            Err(loom_loopir::Error::NonUniform { .. }) => {
                let mut report = loom_check::Report::from_diagnostics(
                    loom_check::check_access_dependences(&nest, None),
                );
                apply_allow(a, &mut report);
                render_report(a, &report);
                std::process::exit(if report.has_errors() { 1 } else { 0 })
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2)
            }
        }
    } else {
        pick_workload(a)
    };
    let pi = loom_hyperplane::TimeFn::new(a.int_list_flag("pi").unwrap_or_else(|| w.pi.clone()));
    let cube_dim = a.int_flag("cube", 1).max(0) as usize;
    let rec = obs_recorder();

    // Stage the pipeline by hand rather than through `run_pipeline`: an
    // illegal Π must come back as an LC001/LC009 diagnostic on stdout,
    // not as a partitioner error on stderr.
    let mut report = loom_check::Report::from_diagnostics(if symbolic {
        loom_check::check_legality_symbolic(&pi, &w.deps)
    } else {
        loom_check::check_legality(&pi, &w.deps)
    });
    if !report.has_errors() {
        let config = loom_partition::PartitionConfig {
            grouping_choice: a.flags.get("grouping").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --grouping expects an index");
                    std::process::exit(2)
                })
            }),
            seed: None,
        };
        let partitioning =
            loom_partition::partition(w.nest.space().clone(), w.deps.clone(), pi.clone(), &config)
                .unwrap_or_else(|e| {
                    eprintln!("partitioning failed: {e}");
                    std::process::exit(1)
                });
        let tig = loom_partition::Tig::from_partitioning(&partitioning);
        let mapping = loom_mapping::map_partitioning(&partitioning, cube_dim).unwrap_or_else(|e| {
            eprintln!("mapping failed: {e}");
            std::process::exit(1)
        });
        if let Some(mode) = a.flags.get("corrupt") {
            // Seeded-mutation mode: generate the SPMD program, corrupt
            // it, and run the interleaving engine's program-level
            // rules on the result — an expect-fail harness for LC013–
            // LC015 counterexamples.
            let mutation = parse_mutation(mode);
            let seed = a.int_flag("corrupt-seed", 1).max(0) as u64;
            let mut cg = loom_codegen::generate(
                &w.nest,
                &partitioning,
                mapping.assignment(),
                1usize << mapping.cube().dim(),
            )
            .unwrap_or_else(|e| {
                eprintln!("codegen failed: {e}");
                std::process::exit(1)
            });
            cg.program =
                loom_check::mutate_program(&cg.program, mutation, seed).unwrap_or_else(|| {
                    eprintln!("--corrupt {mode}: the program has no eligible site");
                    std::process::exit(2)
                });
            report = loom_check::check_program(
                &w.nest,
                &cg,
                &loom_check::InterleaveOptions::default(),
                &rec,
            );
        } else {
            report = loom_check::check_pipeline_mode(
                &loom_check::PipelineCheck {
                    nest: &w.nest,
                    deps: &w.deps,
                    pi: &pi,
                    partitioning: &partitioning,
                    tig: &tig,
                    assignment: mapping.assignment(),
                    cube_dim: mapping.cube().dim(),
                },
                if interleave {
                    loom_check::CheckMode::Interleaving
                } else if symbolic {
                    loom_check::CheckMode::Symbolic
                } else {
                    loom_check::CheckMode::Enumerative
                },
                &rec,
            );
        }
    }
    apply_allow(a, &mut report);
    render_report(a, &report);
    let obs = a.obs_flags();
    if let Some(path) = &obs.metrics_out {
        let doc = loom_core::obs_export::metrics_json(&rec, None);
        write_out(path, doc.render_pretty(), "metrics");
    }
    if let Some(path) = &obs.flame_out {
        write_flame(&rec, path);
    }
    flush_flight(&rec, "check");
    if report.has_errors() {
        std::process::exit(1);
    }
}

fn cmd_viz(a: &Args) {
    let w = pick_workload(a);
    let out = run_pipeline(a, &w, false);
    if a.switch("dot") {
        println!("{}", loom_viz::group_graph_dot(&out.partitioning));
        println!(
            "{}",
            loom_viz::tig_dot(&out.tig, Some(out.mapping.assignment()))
        );
        return;
    }
    match loom_viz::block_grid(&out.partitioning) {
        Some(grid) => {
            println!("blocks (one letter per block):\n{grid}");
            let sched = loom_hyperplane::Schedule::build(out.pi.clone(), w.nest.space());
            println!(
                "hyperplane steps (mod 10):\n{}",
                loom_viz::wavefront_grid(&sched, w.nest.space()).unwrap()
            );
        }
        None => {
            println!("(space is not 2-D; emitting DOT instead)\n");
            println!("{}", loom_viz::group_graph_dot(&out.partitioning));
        }
    }
}

fn cmd_explore(a: &Args) {
    let w = pick_workload(a);
    let dims: Vec<usize> = a
        .int_list_flag("cubes")
        .map(|v| v.into_iter().map(|x| x.max(0) as usize).collect())
        .unwrap_or_else(|| vec![1, 2, 3]);
    let cfg = loom_core::explore::ExploreConfig {
        pi_bound: a.int_flag("pi-bound", 1).max(1),
        top: a.int_flag("top", 10).max(1) as usize,
        machine: MachineOptions {
            params: machine_params(a),
            ..Default::default()
        },
        threads: a.int_flag("threads", 0).max(0) as usize,
        prune: !a.switch("no-prune"),
    };
    let rec = obs_recorder();
    let start = std::time::Instant::now();
    let best = loom_core::explore::explore_with(&w.nest, &dims, &cfg, &rec).unwrap_or_else(|e| {
        eprintln!("exploration failed: {e}");
        std::process::exit(1)
    });
    let wall_us = start.elapsed().as_micros() as u64;
    if let Some(path) = &a.obs_flags().flame_out {
        write_flame(&rec, path);
    }
    flush_flight(&rec, "explore");
    if let Some(path) = a.flags.get("metrics-out") {
        let doc = loom_core::obs_export::metrics_json(&rec, None);
        std::fs::write(path, doc.render_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = a.flags.get("bench-out") {
        let counters = rec.counters();
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        let doc = loom_obs::Json::obj(vec![
            ("workload", loom_obs::Json::from(w.nest.name())),
            (
                "candidates",
                loom_obs::Json::from(get("explore.candidates")),
            ),
            ("simulated", loom_obs::Json::from(get("explore.simulated"))),
            ("pruned", loom_obs::Json::from(get("explore.pruned"))),
            ("wall_us", loom_obs::Json::from(wall_us)),
            ("ranked", loom_obs::Json::from(best.len())),
        ]);
        std::fs::write(path, doc.render_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        eprintln!("bench summary written to {path}");
    }
    let mut t = Table::new([
        "rank", "Π", "grouping", "N", "blocks", "makespan", "messages",
    ]);
    for (i, c) in best.iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            format!("{:?}", c.pi),
            format!("D[{}]", c.grouping),
            format!("{}", 1usize << c.cube_dim),
            format!("{}", c.blocks),
            format!("{}", c.makespan),
            format!("{}", c.messages),
        ]);
    }
    println!("{t}");
}

fn cmd_profile(a: &Args) {
    let w = pick_workload(a);
    let rec = obs_recorder();
    let cfg = PipelineConfig {
        time_fn: a.int_list_flag("pi").or(Some(w.pi.clone())),
        cube_dim: a.int_flag("cube", 1).max(0) as usize,
        target: pick_target(a),
        machine: None,
        ..Default::default()
    };
    // Stage by hand: the profiler needs the Program and SimConfig,
    // which PipelineOutput does not carry.
    let pipeline = Pipeline::new(w.nest.clone());
    let stage = pipeline.stage_partition(&cfg, &rec).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1)
    });
    let (_mapping, placement, target) = stage.map_with(&cfg, &rec).unwrap_or_else(|e| {
        eprintln!("pipeline failed: {e}");
        std::process::exit(1)
    });
    let program = stage.program(&placement);
    let sim_cfg = loom_machine::SimConfig {
        params: machine_params(a),
        topology: target.topology(),
        words_per_arc: 1,
        batch_messages: a.switch("batch"),
        link_contention: a.switch("contention"),
        record_trace: true,
        collect_metrics: true,
    };
    let report = {
        let _s = rec.span("pipeline.simulate");
        loom_machine::simulate(&program, &sim_cfg).unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            std::process::exit(1)
        })
    };
    let k = a.int_flag("top", 3).max(1) as usize;
    let profile = {
        let _s = rec.span("profile.critical_path");
        loom_machine::critical_path_top_k(&program, &sim_cfg, &report, k).unwrap_or_else(|e| {
            eprintln!("profiling failed: {e}");
            std::process::exit(1)
        })
    };
    if a.switch("json") {
        println!("{}", profile.to_json().render_pretty());
    } else {
        println!(
            "{} on {:?} ({} procs)",
            w.nest.name(),
            target,
            placement.num_procs()
        );
        print!("{}", profile.render_human());
    }
    let obs = a.obs_flags();
    if let Some(path) = &obs.trace_out {
        match loom_machine::trace::chrome_trace_annotated(
            &report,
            placement.num_procs(),
            Some(&profile),
        ) {
            Some(doc) => write_out(path, doc.render_pretty(), "annotated trace"),
            None => {
                eprintln!("internal error: no trace recorded despite profiling");
                std::process::exit(1)
            }
        }
    }
    if let Some(path) = &obs.metrics_out {
        let doc = loom_core::obs_export::metrics_json(&rec, Some(&report));
        write_out(path, doc.render_pretty(), "metrics");
    }
    if let Some(path) = &obs.flame_out {
        write_flame(&rec, path);
    }
    flush_flight(&rec, "profile");
}

/// Read + parse a JSON document for `loom obs diff`.
fn read_json(path: &str) -> Json {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2)
    });
    Json::parse(&src).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(2)
    })
}

fn cmd_obs(a: &Args) {
    let (old_path, new_path) = match (
        a.positional.first().map(String::as_str),
        a.positional.get(1),
        a.positional.get(2),
    ) {
        (Some("diff"), Some(old), Some(new)) => (old.clone(), new.clone()),
        _ => {
            eprintln!(
                "usage: loom obs diff <old.json> <new.json> [--threshold B] [--warn-only] [--json]"
            );
            std::process::exit(2)
        }
    };
    let old = read_json(&old_path);
    let new = read_json(&new_path);
    let opts = loom_obs::DiffOptions {
        tolerance_buckets: a.int_flag("threshold", 1).max(0) as usize,
    };
    let report = loom_obs::diff::diff(&old, &new, &opts);
    if a.switch("json") {
        println!("{}", report.to_json().render_pretty());
    } else {
        let table = report.render_table();
        if table.is_empty() {
            println!(
                "no differences beyond noise ({} leaves compared)",
                report.compared
            );
        } else {
            print!("{table}");
        }
    }
    if report.has_regressions() {
        if a.switch("warn-only") {
            eprintln!("regressions found (exit 0: --warn-only)");
        } else {
            std::process::exit(1);
        }
    }
}

fn cmd_table1(a: &Args) {
    let m = a.int_flag("m", 1024).max(1) as u64;
    let params = machine_params(a);
    let mut t = Table::new(["N", "T_exec (symbolic)", "ticks"]);
    for (n, terms) in table1_rows(m) {
        t.row([
            format!("{n}"),
            terms.render(),
            format!("{}", terms.evaluate(&params)),
        ]);
    }
    println!("{t}");
}

fn main() {
    let a = args::parse(std::env::args().skip(1));
    match a.command.as_deref() {
        Some("workloads") => cmd_workloads(),
        Some("partition") => cmd_partition(&a),
        Some("map") => cmd_map(&a),
        Some("simulate") | Some("sim") => cmd_simulate(&a),
        Some("codegen") => cmd_codegen(&a),
        Some("check") => cmd_check(&a),
        Some("viz") => cmd_viz(&a),
        Some("explore") => cmd_explore(&a),
        Some("profile") => cmd_profile(&a),
        Some("obs") => cmd_obs(&a),
        Some("table1") => cmd_table1(&a),
        _ => usage(),
    }
}
