//! The deterministic discrete-event engine.
//!
//! One engine serves two entry points: [`simulate`] runs the paper's
//! perfectly reliable machine, and [`simulate_with_faults`] runs the
//! same machine under a deterministic [`FaultPlan`] with a
//! [`RecoveryPolicy`]. The fault hooks are structured so that an empty
//! plan executes exactly the baseline code path — no RNG draws, no
//! extra events — which is what makes the bit-identical-replay property
//! testable.

use crate::cost::MachineParams;
use crate::fault::{DegradationReport, FaultConfig, FaultImpact, FaultPlan, RecoveryPolicy};
use crate::metrics::{MsgRecord, SimMetrics};
use crate::program::Program;
use crate::topology::Topology;
use crate::trace::TaskRecord;
use loom_obs::SplitMix64;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Machine timing parameters.
    pub params: MachineParams,
    /// Interconnect (must have at least `program.num_procs` nodes).
    pub topology: Topology,
    /// Words carried by one dependence arc (1 in the paper's model).
    pub words_per_arc: u64,
    /// Combine all arcs from one task to one destination processor into a
    /// single message (an optimization the paper's per-word model does
    /// not perform; exposed for the ablation benches).
    pub batch_messages: bool,
    /// Model per-link contention: each directed link carries one message
    /// at a time, and store-and-forward messages queue at busy links.
    /// Off by default (the paper's cost model charges latency only).
    pub link_contention: bool,
    /// Record a full execution trace (costs memory proportional to the
    /// task count).
    pub record_trace: bool,
    /// Collect rich telemetry ([`SimMetrics`]): per-processor tick
    /// breakdowns, per-link traffic, hop histograms, and a message log.
    /// Purely observational — never changes simulated timing.
    pub collect_metrics: bool,
}

impl SimConfig {
    /// The paper's model on a hypercube: one word per arc, no batching.
    pub fn paper_hypercube(dim: usize, params: MachineParams) -> SimConfig {
        SimConfig {
            params,
            topology: Topology::Hypercube(dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: false,
            collect_metrics: false,
        }
    }
}

/// What the simulation measured.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Completion time of the last task.
    pub makespan: u64,
    /// Compute occupancy per processor.
    pub compute: Vec<u64>,
    /// Send occupancy per processor.
    pub comm: Vec<u64>,
    /// Messages sent (every transmission attempt, including
    /// retransmissions and the crash state-transfer message).
    pub messages: u64,
    /// Words sent.
    pub words: u64,
    /// Execution trace, if requested.
    pub trace: Option<Vec<TaskRecord>>,
    /// Rich telemetry, if requested via
    /// [`SimConfig::collect_metrics`].
    pub metrics: Option<SimMetrics>,
    /// What the injected faults did to the run; `Some` only for
    /// [`simulate_with_faults`].
    pub degradation: Option<DegradationReport>,
}

impl SimReport {
    /// The busiest processor's total occupancy (compute + comm) — the
    /// quantity the paper's `T_exec` bounds.
    pub fn max_proc_occupancy(&self) -> u64 {
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| c + m)
            .max()
            .unwrap_or(0)
    }

    /// Per-processor idle ticks: makespan minus compute and comm
    /// occupancy.
    pub fn idle_ticks(&self) -> Vec<u64> {
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| self.makespan.saturating_sub(c + m))
            .collect()
    }

    /// Total communication occupancy divided by total compute occupancy
    /// across all processors (`0.0` for a compute-free program).
    pub fn comm_to_compute_ratio(&self) -> f64 {
        let compute: u64 = self.compute.iter().sum();
        if compute == 0 {
            return 0.0;
        }
        self.comm.iter().sum::<u64>() as f64 / compute as f64
    }

    /// Per-processor utilization: fraction of the makespan each
    /// processor was busy (compute + comm), in `[0, 1]`.
    pub fn per_proc_utilization(&self) -> Vec<f64> {
        if self.makespan == 0 {
            return vec![0.0; self.compute.len()];
        }
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| (c + m) as f64 / self.makespan as f64)
            .collect()
    }
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Not every task completed — the arc set contains a cycle.
    Deadlock {
        /// Tasks that completed.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The topology is smaller than the program's processor count.
    MachineTooSmall {
        /// Processors the program needs.
        needed: usize,
        /// Processors the topology has.
        available: usize,
    },
    /// No live route connects a communicating processor pair — the
    /// fault plan permanently partitioned the interconnect between
    /// them.
    Unroutable {
        /// The sending processor.
        src: usize,
        /// The destination processor.
        dst: usize,
    },
    /// A fault stranded work that the active [`RecoveryPolicy`] cannot
    /// recover, with a causal explanation of what went wrong.
    Unrecoverable {
        /// What fault stranded the work.
        fault: String,
        /// The first stranded task, when one is identifiable.
        task: Option<u32>,
        /// The tick at which recovery was abandoned.
        at: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { completed, total } => {
                write!(f, "deadlock: {completed}/{total} tasks completed")
            }
            SimError::MachineTooSmall { needed, available } => {
                write!(
                    f,
                    "program needs {needed} processors, machine has {available}"
                )
            }
            SimError::Unroutable { src, dst } => {
                write!(
                    f,
                    "no live route from processor {src} to processor {dst} (interconnect partitioned)"
                )
            }
            SimError::Unrecoverable { fault, task, at } => {
                write!(f, "unrecoverable at tick {at}: {fault}")?;
                if let Some(t) = task {
                    write!(f, " (task {t} stranded)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, PartialEq, Eq)]
enum Kind {
    TaskDone {
        proc: u32,
        task: u32,
    },
    SendDone {
        proc: u32,
    },
    Arrive {
        tasks: Vec<u32>,
    },
    RecvDone {
        proc: u32,
        tasks: Vec<u32>,
    },
    /// A retransmission timer fired; re-enqueue the stored send.
    Retry {
        id: u64,
    },
    /// A scheduled fail-stop crash.
    Crash {
        proc: u32,
    },
}

#[derive(Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    kind: Kind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct PendingSend {
    dst_proc: u32,
    src_task: u32,
    tasks: Vec<u32>,
    words: u64,
    /// Transmission attempt number (0 = first try).
    attempt: u32,
}

#[derive(Default)]
struct Proc {
    busy_until: u64,
    ready: BinaryHeap<Reverse<(i64, u32)>>,
    sends: VecDeque<PendingSend>,
    /// Messages that arrived but still need `t_recv` of software
    /// processing before their data is usable.
    recvs: VecDeque<Vec<u32>>,
}

/// Reusable engine state for back-to-back simulations.
///
/// The engine's working buffers (adjacency lists, ready heaps, event
/// heap, per-processor queues, link/retry tables) are taken from a
/// `SimScratch` at the start of a run and handed back — cleared but
/// with their allocations intact — when it ends, so a sweep that runs
/// thousands of simulations (the explore path) pays the allocator once
/// per worker instead of once per run. Reusing a scratch is
/// **bit-identical** to starting fresh: every buffer is logically reset
/// before use; only spare capacity is carried over.
#[derive(Default)]
pub struct SimScratch {
    out: Vec<Vec<(u32, u64)>>,
    indeg: Vec<u32>,
    proc_of: Vec<u32>,
    done: Vec<bool>,
    alive: Vec<bool>,
    running: Vec<Option<(u32, u64)>>,
    procs: Vec<Proc>,
    heap: BinaryHeap<Reverse<Ev>>,
    link_free: HashMap<(usize, usize), u64>,
    retry_states: HashMap<u64, RetryState>,
}

/// Fault-layer state carried alongside the engine when a plan is
/// active. Absent entirely for baseline runs.
struct FaultCtx<'a> {
    plan: &'a FaultPlan,
    policy: RecoveryPolicy,
    rng: SplitMix64,
    deg: DegradationReport,
    /// Plan has nonzero per-message noise rates.
    noise: bool,
    /// Plan schedules link outages.
    has_links: bool,
    /// Plan schedules slowdown windows.
    has_slow: bool,
}

impl FaultCtx<'_> {
    /// Bounded exponential backoff: `retry_timeout << min(attempt, 6)`.
    fn rto(&self, attempt: u32) -> u64 {
        self.plan.retry_timeout.max(1) << attempt.min(6)
    }
}

struct RetryState {
    /// Current owner (reassigned if the original sender crashes).
    proc: u32,
    send: PendingSend,
}

struct Engine<'a> {
    program: &'a Program,
    config: &'a SimConfig,
    out: Vec<Vec<(u32, u64)>>,
    indeg: Vec<u32>,
    /// Mutable task→processor map; diverges from `program.proc_of`
    /// only when `Remap` recovery moves tasks off a crashed processor.
    proc_of: Vec<u32>,
    done: Vec<bool>,
    alive: Vec<bool>,
    /// The task each processor is executing, with its start tick.
    running: Vec<Option<(u32, u64)>>,
    procs: Vec<Proc>,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    compute: Vec<u64>,
    comm: Vec<u64>,
    messages: u64,
    words_sent: u64,
    completed: usize,
    makespan: u64,
    trace: Option<Vec<TaskRecord>>,
    metrics: Option<SimMetrics>,
    link_free: HashMap<(usize, usize), u64>,
    retry_states: HashMap<u64, RetryState>,
    next_retry_id: u64,
    faults: Option<FaultCtx<'a>>,
}

impl<'a> Engine<'a> {
    fn new(
        program: &'a Program,
        config: &'a SimConfig,
        faults: Option<FaultCtx<'a>>,
        scratch: &mut SimScratch,
    ) -> Result<Engine<'a>, SimError> {
        let n_tasks = program.len();
        let n_procs = program.num_procs;
        if config.topology.len() < n_procs {
            return Err(SimError::MachineTooSmall {
                needed: n_procs,
                available: config.topology.len(),
            });
        }
        // Working buffers come from the scratch, logically reset so a
        // reused scratch behaves exactly like a fresh one.
        let mut out = std::mem::take(&mut scratch.out);
        for v in &mut out {
            v.clear();
        }
        out.resize_with(n_tasks, Vec::new);
        let mut indeg = std::mem::take(&mut scratch.indeg);
        indeg.clear();
        indeg.resize(n_tasks, 0);
        // Adjacency (successor, words) and in-degrees.
        for (k, &(a, b)) in program.arcs.iter().enumerate() {
            out[a as usize].push((b, program.arc_words[k]));
            indeg[b as usize] += 1;
        }
        let mut proc_of = std::mem::take(&mut scratch.proc_of);
        proc_of.clear();
        proc_of.extend_from_slice(&program.proc_of);
        let mut done = std::mem::take(&mut scratch.done);
        done.clear();
        done.resize(n_tasks, false);
        let mut alive = std::mem::take(&mut scratch.alive);
        alive.clear();
        alive.resize(n_procs, true);
        let mut running = std::mem::take(&mut scratch.running);
        running.clear();
        running.resize(n_procs, None);
        let mut procs = std::mem::take(&mut scratch.procs);
        for p in &mut procs {
            p.busy_until = 0;
            p.ready.clear();
            p.sends.clear();
            p.recvs.clear();
        }
        procs.resize_with(n_procs, Proc::default);
        let mut heap = std::mem::take(&mut scratch.heap);
        heap.clear();
        let mut link_free = std::mem::take(&mut scratch.link_free);
        link_free.clear();
        let mut retry_states = std::mem::take(&mut scratch.retry_states);
        retry_states.clear();
        Ok(Engine {
            program,
            config,
            out,
            indeg,
            proc_of,
            done,
            alive,
            running,
            procs,
            heap,
            seq: 0,
            compute: vec![0; n_procs],
            comm: vec![0; n_procs],
            messages: 0,
            words_sent: 0,
            completed: 0,
            makespan: 0,
            trace: config.record_trace.then(Vec::new),
            metrics: config.collect_metrics.then(|| SimMetrics::new(n_procs)),
            link_free,
            retry_states,
            next_retry_id: 0,
            faults,
        })
    }

    /// Hand the working buffers back to `scratch` so the next run can
    /// reuse their allocations.
    fn reclaim(&mut self, scratch: &mut SimScratch) {
        scratch.out = std::mem::take(&mut self.out);
        scratch.indeg = std::mem::take(&mut self.indeg);
        scratch.proc_of = std::mem::take(&mut self.proc_of);
        scratch.done = std::mem::take(&mut self.done);
        scratch.alive = std::mem::take(&mut self.alive);
        scratch.running = std::mem::take(&mut self.running);
        scratch.procs = std::mem::take(&mut self.procs);
        scratch.heap = std::mem::take(&mut self.heap);
        scratch.link_free = std::mem::take(&mut self.link_free);
        scratch.retry_states = std::mem::take(&mut self.retry_states);
    }

    fn push_ev(&mut self, time: u64, kind: Kind) {
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn dur_of(&self, task: u32) -> u64 {
        self.program.task_flops[task as usize] * self.config.params.t_calc
    }

    /// Retire one incoming arc of `w`; returns the owner processor when
    /// the task just became ready.
    fn complete_arc(&mut self, w: u32) -> Option<usize> {
        self.indeg[w as usize] -= 1;
        if self.indeg[w as usize] == 0 {
            let q = self.proc_of[w as usize] as usize;
            self.procs[q]
                .ready
                .push(Reverse((self.program.step_of[w as usize], w)));
            Some(q)
        } else {
            None
        }
    }

    /// Give processor `p` work if it is alive and free at `now`.
    ///
    /// Scheduling policy: each processor is a single resource shared by
    /// computation and message startup. When free it first issues
    /// pending sends (data flows out as early as possible), then
    /// processes received messages, then executes the ready task with
    /// the smallest hyperplane step — so the execution order defined by
    /// the time transformation is preserved within every processor.
    fn dispatch(&mut self, p: usize, now: u64) -> Result<(), SimError> {
        if !self.alive[p] || self.procs[p].busy_until > now {
            return Ok(());
        }
        loop {
            if let Some(send) = self.procs[p].sends.pop_front() {
                if self.issue_send(p, now, send)? {
                    return Ok(());
                }
                // Send resolved without occupying the processor
                // (delivered locally after a remap, or backed off to a
                // retry timer) — keep looking for work.
                continue;
            }
            if let Some(tasks) = self.procs[p].recvs.pop_front() {
                let occ = self.config.params.t_recv;
                self.procs[p].busy_until = now + occ;
                self.comm[p] += occ;
                if let Some(m) = self.metrics.as_mut() {
                    m.procs[p].recv_ticks += occ;
                    m.recvs.push(crate::metrics::RecvRecord {
                        proc: p as u32,
                        start: now,
                        end: now + occ,
                        tasks: tasks.clone(),
                    });
                }
                self.push_ev(
                    now + occ,
                    Kind::RecvDone {
                        proc: p as u32,
                        tasks,
                    },
                );
                return Ok(());
            }
            if let Some(Reverse((_, task))) = self.procs[p].ready.pop() {
                self.start_task(p, now, task);
                return Ok(());
            }
            return Ok(());
        }
    }

    fn start_task(&mut self, p: usize, now: u64, task: u32) {
        let mut dur = self.dur_of(task);
        if let Some(f) = self.faults.as_mut() {
            if f.has_slow && dur > 0 {
                // The slowdown factor at the start tick governs the
                // whole task (tasks are the atomic unit of work).
                let factor = f.plan.slow_factor(p, now);
                if factor > 1 {
                    let extra = dur * (factor - 1);
                    dur *= factor;
                    f.deg.faults_hit += 1;
                    f.deg.attribution.push(FaultImpact {
                        fault: format!("P{p} slowed {factor}x during task {task}"),
                        at: now,
                        proc: p as u32,
                        delay_ticks: extra,
                    });
                }
            }
        }
        self.procs[p].busy_until = now + dur;
        self.compute[p] += dur;
        self.running[p] = Some((task, now));
        if let Some(m) = self.metrics.as_mut() {
            m.procs[p].compute_ticks += dur;
            m.procs[p].tasks += 1;
        }
        self.push_ev(
            now + dur,
            Kind::TaskDone {
                proc: p as u32,
                task,
            },
        );
    }

    /// A fault consumed transmission attempt `send.attempt`. Apply the
    /// recovery policy: abort, or arm a bounded-backoff retry timer
    /// counted from `retry_base`.
    fn fault_lost(
        &mut self,
        p: usize,
        now: u64,
        send: PendingSend,
        why: &str,
        retry_base: u64,
    ) -> Result<(), SimError> {
        let dst = send.dst_proc;
        let task = send.tasks.first().copied();
        let f = self.faults.as_mut().expect("fault_lost without fault ctx");
        f.deg.faults_hit += 1;
        if f.policy == RecoveryPolicy::Abort {
            return Err(SimError::Unrecoverable {
                fault: format!("{why} on message P{p}->P{dst} (recovery=abort)"),
                task,
                at: now,
            });
        }
        if send.attempt >= f.plan.max_retries {
            return Err(SimError::Unrecoverable {
                fault: format!(
                    "message P{p}->P{dst} abandoned after {} attempts ({why})",
                    send.attempt + 1
                ),
                task,
                at: now,
            });
        }
        let backoff = f.rto(send.attempt);
        f.deg.attribution.push(FaultImpact {
            fault: format!("{why} P{p}->P{dst} attempt {}", send.attempt),
            at: now,
            proc: p as u32,
            delay_ticks: retry_base + backoff - now,
        });
        let id = self.next_retry_id;
        self.next_retry_id += 1;
        self.retry_states.insert(
            id,
            RetryState {
                proc: p as u32,
                send: PendingSend {
                    attempt: send.attempt + 1,
                    ..send
                },
            },
        );
        self.push_ev(retry_base + backoff, Kind::Retry { id });
        Ok(())
    }

    /// Issue one pending send from `p`. Returns `Ok(true)` when the
    /// send occupies the processor (the baseline outcome), `Ok(false)`
    /// when it resolved without consuming processor time.
    fn issue_send(&mut self, p: usize, now: u64, mut send: PendingSend) -> Result<bool, SimError> {
        // Destination is wherever the tasks live *now* — a remap may
        // have moved them since the send was queued.
        let dst = self.proc_of[send.tasks[0] as usize] as usize;
        send.dst_proc = dst as u32;
        if dst == p {
            // The remap brought producer and consumers together: the
            // transfer is local and free.
            if let Some(f) = self.faults.as_mut() {
                f.deg.localized_sends += 1;
            }
            let ready: Vec<usize> = send
                .tasks
                .iter()
                .filter_map(|&w| self.complete_arc(w))
                .collect();
            debug_assert!(ready.iter().all(|&q| q == p));
            return Ok(false);
        }
        if send.attempt > 0 {
            let f = self.faults.as_mut().expect("retry without fault ctx");
            f.deg.retries += 1;
            f.deg.retransmitted_words += send.words;
        }
        let occ = self.config.params.send_occupancy(send.words);

        // Fault layer, part 1: route around links that are down at the
        // instant the message leaves the sender.
        let mut reroute: Option<Vec<(usize, usize)>> = None;
        let link_plan = self
            .faults
            .as_ref()
            .and_then(|f| f.has_links.then_some(f.plan));
        if let Some(plan) = link_plan {
            let is_down = |a: usize, b: usize| plan.link_down_during(a, b, now, now);
            let default_links = self.config.topology.route_links(p, dst);
            if default_links.iter().any(|&(a, b)| is_down(a, b)) {
                match self.config.topology.route_links_avoiding(p, dst, is_down) {
                    Some(links) => {
                        let extra =
                            occ * (links.len() as u64).saturating_sub(default_links.len() as u64);
                        let f = self.faults.as_mut().unwrap();
                        f.deg.faults_hit += 1;
                        f.deg.reroutes += 1;
                        if extra > 0 {
                            f.deg.attribution.push(FaultImpact {
                                fault: format!("rerouted P{p}->P{dst} around dead links"),
                                at: now,
                                proc: p as u32,
                                delay_ticks: extra,
                            });
                        }
                        reroute = Some(links);
                    }
                    None => {
                        // No live route at all right now. If the cut is
                        // permanent no retry can ever succeed.
                        let dead_forever = |a: usize, b: usize| plan.link_dead_forever(a, b, now);
                        if self
                            .config
                            .topology
                            .route_links_avoiding(p, dst, dead_forever)
                            .is_none()
                        {
                            return Err(SimError::Unroutable { src: p, dst });
                        }
                        self.fault_lost(p, now, send, "link outage", now)?;
                        return Ok(false);
                    }
                }
            }
        }

        // Fault layer, part 2: per-attempt message noise. Each guard
        // draws at most once so the stream advances deterministically.
        let mut lost: Option<&'static str> = None;
        let mut extra_delay = 0u64;
        if let Some(f) = self.faults.as_mut() {
            if f.noise {
                if f.plan.drop_per_mille > 0 && f.rng.below(1000) < f.plan.drop_per_mille as u64 {
                    f.deg.drops += 1;
                    lost = Some("dropped");
                } else if f.plan.corrupt_per_mille > 0
                    && f.rng.below(1000) < f.plan.corrupt_per_mille as u64
                {
                    f.deg.corruptions += 1;
                    lost = Some("corrupted");
                } else if f.plan.delay_per_mille > 0
                    && f.rng.below(1000) < f.plan.delay_per_mille as u64
                {
                    extra_delay = 1 + f.rng.below(f.plan.max_delay_ticks.max(1));
                    f.deg.faults_hit += 1;
                    f.deg.delays += 1;
                    f.deg.delay_ticks_added += extra_delay;
                    f.deg.attribution.push(FaultImpact {
                        fault: format!("delayed P{p}->P{dst} attempt {}", send.attempt),
                        at: now,
                        proc: p as u32,
                        delay_ticks: extra_delay,
                    });
                }
            }
        }

        let hops_default = self.config.topology.distance(p, dst) as u64;
        debug_assert!(hops_default > 0, "send to self");
        // Only routed when someone needs the links.
        let route: Option<Vec<(usize, usize)>> = match reroute {
            Some(links) => Some(links),
            None => (self.config.link_contention || self.metrics.is_some())
                .then(|| self.config.topology.route_links(p, dst)),
        };
        let hops = route.as_ref().map_or(hops_default, |r| r.len() as u64);
        let (sender_done, arrival) = if self.config.link_contention {
            // Store-and-forward with one message per directed link at a
            // time: queue at each busy link.
            let links = route
                .as_deref()
                .ok_or(SimError::Unroutable { src: p, dst })?;
            let mut cur = now;
            let mut first_end = now + occ;
            for (i, link) in links.iter().enumerate() {
                let start = cur.max(self.link_free.get(link).copied().unwrap_or(0));
                if let Some(m) = self.metrics.as_mut() {
                    let lm = m.links.entry(*link).or_default();
                    lm.wait_ticks += start - cur;
                }
                let end = start + occ;
                self.link_free.insert(*link, end);
                if i == 0 {
                    first_end = end;
                }
                cur = end;
            }
            (first_end, cur)
        } else {
            (now + occ, now + occ * hops)
        };
        let arrival = arrival + extra_delay;
        if let Some(m) = self.metrics.as_mut() {
            let links = route
                .as_deref()
                .ok_or(SimError::Unroutable { src: p, dst })?;
            for link in links {
                let lm = m.links.entry(*link).or_default();
                lm.messages += 1;
                lm.words += send.words;
                lm.busy_ticks += occ;
            }
            m.procs[p].msgs_sent += 1;
            m.procs[p].send_ticks += sender_done - now;
            m.hops.record(hops);
            m.messages.push(MsgRecord {
                src_proc: p as u32,
                dst_proc: send.dst_proc,
                src_task: send.src_task,
                dst_tasks: send.tasks.clone(),
                words: send.words,
                send_start: now,
                send_end: sender_done,
                arrival,
                hops: hops as u32,
                fault_delay: extra_delay,
            });
        }
        // A blocking send occupies the sender until its first hop
        // (including any wait for the outgoing link).
        self.procs[p].busy_until = sender_done;
        self.comm[p] += sender_done - now;
        self.messages += 1;
        self.words_sent += send.words;
        self.push_ev(sender_done, Kind::SendDone { proc: p as u32 });
        match lost {
            None => {
                let tasks = std::mem::take(&mut send.tasks);
                self.push_ev(arrival, Kind::Arrive { tasks });
            }
            Some(why) => {
                // The attempt burned wire time but delivers nothing;
                // the sender learns from the missing ack after its
                // timeout, counted from the end of the transmission.
                self.fault_lost(p, now, send, why, sender_done)?;
            }
        }
        Ok(true)
    }

    fn on_task_done(&mut self, p: usize, task: u32, now: u64) -> Result<(), SimError> {
        if !self.alive[p] {
            // The processor died mid-execution; the completion is void.
            return Ok(());
        }
        // At a shared tick the processor may already have dispatched its
        // next task (an Arrive with a lower sequence number freed it), so
        // `running` can point past this completion; only clear it when it
        // still names the task that just finished.
        let start = match self.running[p] {
            Some((t, start)) if t == task => {
                self.running[p] = None;
                start
            }
            _ => now.saturating_sub(self.dur_of(task)),
        };
        self.done[task as usize] = true;
        self.completed += 1;
        self.makespan = self.makespan.max(now);
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TaskRecord {
                task,
                proc: p as u32,
                start,
                end: now,
            });
        }
        // Local arcs complete immediately; remote arcs queue sends.
        let mut remote: Vec<(u32, u32, u64)> = Vec::new(); // (dst_proc, dst_task, words)
        for i in 0..self.out[task as usize].len() {
            let (w, arc_w) = self.out[task as usize][i];
            let q = self.proc_of[w as usize];
            if q as usize == p {
                self.complete_arc(w);
            } else {
                remote.push((q, w, arc_w));
            }
        }
        if self.config.batch_messages {
            remote.sort_unstable();
            let mut i = 0;
            while i < remote.len() {
                let dst = remote[i].0;
                let mut tasks = Vec::new();
                let mut words = 0u64;
                while i < remote.len() && remote[i].0 == dst {
                    tasks.push(remote[i].1);
                    words += remote[i].2 * self.config.words_per_arc;
                    i += 1;
                }
                self.procs[p].sends.push_back(PendingSend {
                    dst_proc: dst,
                    src_task: task,
                    tasks,
                    words,
                    attempt: 0,
                });
            }
        } else {
            for (dst, w, arc_w) in remote {
                self.procs[p].sends.push_back(PendingSend {
                    dst_proc: dst,
                    src_task: task,
                    tasks: vec![w],
                    words: arc_w * self.config.words_per_arc,
                    attempt: 0,
                });
            }
        }
        self.dispatch(p, now)
    }

    fn on_arrive(&mut self, tasks: Vec<u32>, now: u64) -> Result<(), SimError> {
        // All tasks of one message live on one processor (a remap moves
        // a crashed processor's tasks together, preserving this).
        let q = self.proc_of[tasks[0] as usize] as usize;
        debug_assert!(tasks
            .iter()
            .all(|&w| self.proc_of[w as usize] as usize == q));
        if let Some(m) = self.metrics.as_mut() {
            m.procs[q].msgs_received += 1;
        }
        if self.config.params.t_recv > 0 {
            self.procs[q].recvs.push_back(tasks);
            self.dispatch(q, now)
        } else {
            for w in tasks {
                if let Some(q) = self.complete_arc(w) {
                    self.dispatch(q, now)?;
                }
            }
            Ok(())
        }
    }

    fn on_recv_done(&mut self, p: usize, tasks: Vec<u32>, now: u64) -> Result<(), SimError> {
        if !self.alive[p] {
            // The receiver died mid-processing; the message data moved
            // with the crash state transfer — redeliver to the tasks'
            // current owner, who pays `t_recv` again.
            let q = self.proc_of[tasks[0] as usize] as usize;
            self.procs[q].recvs.push_back(tasks);
            return self.dispatch(q, now);
        }
        for w in tasks {
            self.complete_arc(w);
        }
        self.dispatch(p, now)
    }

    fn on_retry(&mut self, id: u64, now: u64) -> Result<(), SimError> {
        if let Some(st) = self.retry_states.remove(&id) {
            let mut p = st.proc as usize;
            if !self.alive[p] {
                // Owner crashed and ownership was not reassigned (the
                // send's data now lives with the tasks' owner).
                p = self.proc_of[st.send.tasks[0] as usize] as usize;
            }
            self.procs[p].sends.push_back(st.send);
            self.dispatch(p, now)?;
        }
        Ok(())
    }

    fn on_crash(&mut self, p: usize, now: u64) -> Result<(), SimError> {
        if !self.alive[p] {
            return Ok(());
        }
        self.alive[p] = false;
        let stranded: Vec<u32> = (0..self.program.len())
            .filter(|&t| self.proc_of[t] as usize == p && !self.done[t])
            .map(|t| t as u32)
            .collect();
        let policy = {
            let f = self.faults.as_mut().expect("crash without fault ctx");
            f.deg.crashes += 1;
            f.deg.faults_hit += 1;
            f.policy
        };
        if stranded.is_empty() {
            // Nothing left to do on this processor — fail-stop is free.
            self.running[p] = None;
            return Ok(());
        }
        if policy != RecoveryPolicy::Remap {
            return Err(SimError::Unrecoverable {
                fault: format!(
                    "P{p} fail-stopped with {} unfinished tasks (recovery={policy})",
                    stranded.len()
                ),
                task: Some(stranded[0]),
                at: now,
            });
        }
        // Gray-code nearest surviving neighbor: minimal hop distance,
        // ties toward the lowest processor id.
        let survivor = (0..self.program.num_procs)
            .filter(|&q| self.alive[q])
            .min_by_key(|&q| (self.config.topology.distance(p, q), q))
            .ok_or(SimError::Unrecoverable {
                fault: format!("P{p} fail-stopped and no processor survives"),
                task: Some(stranded[0]),
                at: now,
            })?;
        for &t in &stranded {
            self.proc_of[t as usize] = survivor as u32;
        }
        // Migrate the dead processor's queues: ready tasks, unsent
        // messages (their payloads ride the state transfer), and
        // arrived-but-unprocessed messages.
        let ready: Vec<_> = std::mem::take(&mut self.procs[p].ready).into_vec();
        self.procs[survivor].ready.extend(ready);
        let sends = std::mem::take(&mut self.procs[p].sends);
        self.procs[survivor].sends.extend(sends);
        let recvs = std::mem::take(&mut self.procs[p].recvs);
        self.procs[survivor].recvs.extend(recvs);
        // The task that died mid-execution restarts from scratch.
        if let Some((task, _)) = self.running[p].take() {
            self.procs[survivor]
                .ready
                .push(Reverse((self.program.step_of[task as usize], task)));
        }
        // Pending retransmissions now originate from the survivor.
        for st in self.retry_states.values_mut() {
            if st.proc as usize == p {
                st.proc = survivor as u32;
            }
        }
        // Charge the paper's cost model for shipping the crashed
        // processor's state to the survivor.
        let words = (stranded.len() as u64 * self.config.words_per_arc).max(1);
        let dist = self.config.topology.distance(p, survivor);
        let cost = self.config.params.message_cost(words, dist);
        let start = self.procs[survivor].busy_until.max(now);
        self.procs[survivor].busy_until = start + cost;
        self.comm[survivor] += cost;
        self.messages += 1;
        self.words_sent += words;
        let f = self.faults.as_mut().expect("checked above");
        f.deg.remapped_tasks += stranded.len() as u64;
        f.deg.state_transfer_words += words;
        f.deg.state_transfer_ticks += cost;
        f.deg.attribution.push(FaultImpact {
            fault: format!(
                "P{p} crashed; {} tasks remapped to P{survivor}",
                stranded.len()
            ),
            at: now,
            proc: survivor as u32,
            delay_ticks: cost,
        });
        self.push_ev(
            start + cost,
            Kind::SendDone {
                proc: survivor as u32,
            },
        );
        Ok(())
    }

    fn run(mut self, scratch: &mut SimScratch) -> Result<SimReport, SimError> {
        let outcome = self.exec();
        self.reclaim(scratch);
        outcome?;
        if let Some(tr) = self.trace.as_mut() {
            tr.sort_by_key(|r| (r.start, r.task));
        }
        let degradation = self.faults.take().map(|f| {
            let mut deg = f.deg;
            deg.faults_injected = f.plan.events.len() as u64;
            deg.degraded_makespan = self.makespan;
            deg
        });
        Ok(SimReport {
            makespan: self.makespan,
            compute: std::mem::take(&mut self.compute),
            comm: std::mem::take(&mut self.comm),
            messages: self.messages,
            words: self.words_sent,
            trace: self.trace.take(),
            metrics: self.metrics.take(),
            degradation,
        })
    }

    /// The event loop proper: seed ready sets, drain the heap.
    fn exec(&mut self) -> Result<(), SimError> {
        let n_tasks = self.program.len();
        // Seed the ready sets.
        for t in 0..n_tasks {
            if self.indeg[t] == 0 {
                let p = self.proc_of[t] as usize;
                self.procs[p]
                    .ready
                    .push(Reverse((self.program.step_of[t], t as u32)));
            }
        }
        // Arm scheduled crashes before anything else so a crash at tick
        // `t` beats every same-tick completion (fail-stop wins ties).
        if let Some(f) = self.faults.as_ref() {
            let crashes = f.plan.crashes();
            for (proc, at) in crashes {
                if proc < self.program.num_procs {
                    self.push_ev(at, Kind::Crash { proc: proc as u32 });
                }
            }
        }
        for p in 0..self.program.num_procs {
            self.dispatch(p, 0)?;
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            let now = ev.time;
            match ev.kind {
                Kind::TaskDone { proc, task } => self.on_task_done(proc as usize, task, now)?,
                Kind::SendDone { proc } => self.dispatch(proc as usize, now)?,
                Kind::Arrive { tasks } => self.on_arrive(tasks, now)?,
                Kind::RecvDone { proc, tasks } => self.on_recv_done(proc as usize, tasks, now)?,
                Kind::Retry { id } => self.on_retry(id, now)?,
                Kind::Crash { proc } => self.on_crash(proc as usize, now)?,
            }
        }
        if self.completed != n_tasks {
            return Err(SimError::Deadlock {
                completed: self.completed,
                total: n_tasks,
            });
        }
        Ok(())
    }
}

/// Run the program to completion on the configured (fault-free)
/// machine.
///
/// Scheduling policy: each processor is a single resource shared by
/// computation and message startup. When free it first issues pending
/// sends (data flows out as early as possible), then executes the ready
/// task with the smallest hyperplane step — so the execution order defined
/// by the time transformation is preserved within every processor.
pub fn simulate(program: &Program, config: &SimConfig) -> Result<SimReport, SimError> {
    simulate_scratch(program, config, &mut SimScratch::default())
}

/// [`simulate`] with reusable engine state: back-to-back runs through
/// the same [`SimScratch`] avoid re-allocating the engine's working
/// buffers while remaining bit-identical to fresh-state runs.
pub fn simulate_scratch(
    program: &Program,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> Result<SimReport, SimError> {
    Engine::new(program, config, None, scratch)?.run(scratch)
}

/// One probe's result, reduced to the quantities the symbolic cost
/// engine fits closed forms over. Everything else (traces, metrics,
/// per-processor detail) is deliberately dropped: the oracle protocol
/// is "same numbers or the derivation is wrong".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleSummary {
    /// Simulated makespan in ticks.
    pub makespan: u64,
    /// Messages sent (after batching, when configured).
    pub messages: u64,
    /// Words moved.
    pub words: u64,
}

/// The validation-oracle entry point of `loom_core::symbolic_cost`:
/// simulate `program` and return only the closed-form-checkable
/// summary. Identical to [`simulate_scratch`] underneath — the symbolic
/// engine's probes and its final validation runs go through the *same*
/// discrete-event engine the explorer uses, so "symbolic == simulated"
/// is a statement about one engine, not two.
pub fn oracle_summary(
    program: &Program,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> Result<OracleSummary, SimError> {
    let report = simulate_scratch(program, config, scratch)?;
    Ok(OracleSummary {
        makespan: report.makespan,
        messages: report.messages,
        words: report.words,
    })
}

/// Run the program under a deterministic fault plan.
///
/// The fault-free baseline is simulated first (trace and metrics
/// suppressed) so the attached
/// [`DegradationReport`](crate::fault::DegradationReport) can report
/// makespan inflation; the degraded run then executes with the plan's
/// noise stream seeded from [`FaultConfig::seed`]. An empty plan takes
/// exactly the baseline code path, so its report matches [`simulate`]
/// bit for bit (with a zeroed degradation summary attached).
pub fn simulate_with_faults(
    program: &Program,
    config: &SimConfig,
    faults: &FaultConfig,
) -> Result<SimReport, SimError> {
    simulate_with_faults_scratch(program, config, faults, &mut SimScratch::default())
}

/// [`simulate_with_faults`] with reusable engine state: the baseline
/// and degraded runs share one [`SimScratch`], and back-to-back calls
/// reuse its buffers while remaining bit-identical to fresh-state runs.
pub fn simulate_with_faults_scratch(
    program: &Program,
    config: &SimConfig,
    faults: &FaultConfig,
    scratch: &mut SimScratch,
) -> Result<SimReport, SimError> {
    let mut base_cfg = *config;
    base_cfg.record_trace = false;
    base_cfg.collect_metrics = false;
    let baseline = Engine::new(program, &base_cfg, None, scratch)?.run(scratch)?;
    let ctx = FaultCtx {
        plan: &faults.plan,
        policy: faults.policy,
        rng: SplitMix64::new(faults.seed()),
        deg: DegradationReport::default(),
        noise: faults.plan.has_message_noise(),
        has_links: faults.plan.has_link_faults(),
        has_slow: faults
            .plan
            .events
            .iter()
            .any(|e| matches!(e, crate::fault::FaultEvent::ProcSlow { .. })),
    };
    let mut report = Engine::new(program, config, Some(ctx), scratch)?.run(scratch)?;
    if let Some(deg) = report.degradation.as_mut() {
        deg.baseline_makespan = baseline.makespan;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;

    fn params() -> MachineParams {
        MachineParams {
            t_calc: 1,
            t_start: 10,
            t_comm: 2,
            t_recv: 0,
        }
    }

    fn config(n_procs_dim: usize) -> SimConfig {
        SimConfig {
            params: params(),
            topology: Topology::Hypercube(n_procs_dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: true,
            collect_metrics: false,
        }
    }

    #[test]
    fn single_proc_chain_is_serial() {
        // 3 tasks in a chain on one processor, 2 flops each.
        let prog = Program::from_parts(vec![0, 1, 2], vec![(0, 1), (1, 2)], vec![0, 0, 0], 2, 1);
        let r = simulate(&prog, &config(0)).unwrap();
        assert_eq!(r.makespan, 6);
        assert_eq!(r.compute, vec![6]);
        assert_eq!(r.comm, vec![0]);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn two_proc_chain_pays_message() {
        // task0 (proc0) → task1 (proc1), 1 flop, 1 word, 1 hop.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        // t=1 task0 done; send occupies proc0 until 1+12; arrival at 13;
        // task1 runs 13→14.
        assert_eq!(r.makespan, 14);
        assert_eq!(r.compute, vec![1, 1]);
        assert_eq!(r.comm, vec![12, 0]);
        assert_eq!(r.messages, 1);
        assert_eq!(r.words, 1);
    }

    #[test]
    fn multi_hop_store_and_forward() {
        // proc 0b00 → proc 0b11 on a 2-cube: 2 hops.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 3], 1, 4);
        let r = simulate(&prog, &config(2)).unwrap();
        // Arrival at 1 + 2*12 = 25; completion at 26.
        assert_eq!(r.makespan, 26);
        // Sender only occupied for the first hop.
        assert_eq!(r.comm[0], 12);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let prog = Program::from_parts(vec![0, 0], vec![], vec![0, 1], 5, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        assert_eq!(r.makespan, 5);
        assert_eq!(r.compute, vec![5, 5]);
    }

    #[test]
    fn batching_reduces_messages_and_makespan() {
        // task0 on proc0 feeds 4 tasks on proc1.
        let prog = Program::from_parts(
            vec![0, 1, 1, 1, 1],
            vec![(0, 1), (0, 2), (0, 3), (0, 4)],
            vec![0, 1, 1, 1, 1],
            1,
            2,
        );
        let unbatched = simulate(&prog, &config(1)).unwrap();
        let mut cfg = config(1);
        cfg.batch_messages = true;
        let batched = simulate(&prog, &cfg).unwrap();
        assert_eq!(unbatched.messages, 4);
        assert_eq!(batched.messages, 1);
        assert_eq!(batched.words, 4);
        assert!(batched.makespan < unbatched.makespan);
        // One batched message: t_start + 4·t_comm = 18 occupancy.
        assert_eq!(batched.comm[0], 18);
    }

    #[test]
    fn deadlock_detected() {
        let prog = Program::from_parts(vec![0, 0], vec![(0, 1), (1, 0)], vec![0, 0], 1, 1);
        assert_eq!(
            simulate(&prog, &config(0)).unwrap_err(),
            SimError::Deadlock {
                completed: 0,
                total: 2
            }
        );
    }

    #[test]
    fn machine_too_small_detected() {
        let prog = Program::from_parts(vec![0], vec![], vec![0], 1, 4);
        assert_eq!(
            simulate(&prog, &config(1)).unwrap_err(),
            SimError::MachineTooSmall {
                needed: 4,
                available: 2
            }
        );
    }

    #[test]
    fn trace_records_every_task() {
        let prog = Program::from_parts(vec![0, 1, 2], vec![(0, 1), (1, 2)], vec![0, 0, 0], 2, 1);
        let r = simulate(&prog, &config(0)).unwrap();
        let tr = r.trace.unwrap();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr[0].start, 0);
        assert_eq!(tr[2].end, 6);
    }

    #[test]
    fn link_contention_serializes_shared_links() {
        // Two independent cross-proc sends from proc 0 to proc 1: with
        // contention off both messages pipeline through the wire model
        // (arrival = send end); with contention on, behavior over ONE
        // link is identical because the sender already serializes its
        // own sends. Use a two-hop route shared by two senders instead:
        // procs 0b00 and 0b01 both send to 0b11; the (0b01,0b11) link is
        // shared under e-cube routing.
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (1, 3)],
            vec![0, 1, 3, 3],
            1,
            4,
        );
        let mut free = config(2);
        free.record_trace = false;
        let mut contended = free;
        contended.link_contention = true;
        let a = simulate(&prog, &free).unwrap();
        let b = simulate(&prog, &contended).unwrap();
        assert!(
            b.makespan >= a.makespan,
            "contention can only delay: {} vs {}",
            b.makespan,
            a.makespan
        );
        // Compute totals are unaffected.
        assert_eq!(a.compute, b.compute);
    }

    #[test]
    fn contention_off_matches_original_model() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 3], 1, 4);
        let r = simulate(&prog, &config(2)).unwrap();
        assert_eq!(r.makespan, 26); // same as multi_hop_store_and_forward
    }

    #[test]
    fn receive_overhead_charged_to_receiver() {
        // task0 (proc0) → task1 (proc1), t_recv = 3: arrival at 13, then
        // 3 ticks of receive processing, task1 runs 16→17.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = config(1);
        cfg.params = cfg.params.with_recv(3);
        let r = simulate(&prog, &cfg).unwrap();
        assert_eq!(r.makespan, 17);
        assert_eq!(r.comm[1], 3, "receiver pays t_recv");
        assert_eq!(r.comm[0], 12, "sender unchanged");
    }

    #[test]
    fn receive_overhead_monotone() {
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (0, 3), (1, 2), (1, 3)],
            vec![0, 1, 0, 1],
            3,
            2,
        );
        let mut prev = 0;
        for t_recv in [0u64, 2, 8, 32] {
            let mut cfg = config(1);
            cfg.params = cfg.params.with_recv(t_recv);
            let r = simulate(&prog, &cfg).unwrap();
            assert!(r.makespan >= prev, "t_recv={t_recv}");
            prev = r.makespan;
        }
    }

    #[test]
    fn metrics_breakdown_matches_report() {
        // task0 (proc0) → task1 (proc1): one message, one hop.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = config(1);
        cfg.collect_metrics = true;
        let r = simulate(&prog, &cfg).unwrap();
        let m = r.metrics.as_ref().unwrap();
        assert_eq!(m.procs.len(), 2);
        // Tick breakdowns agree with the coarse report.
        for p in 0..2 {
            assert_eq!(m.procs[p].compute_ticks, r.compute[p]);
            assert_eq!(m.procs[p].send_ticks + m.procs[p].recv_ticks, r.comm[p]);
        }
        assert_eq!(m.procs[0].msgs_sent, 1);
        assert_eq!(m.procs[1].msgs_received, 1);
        assert_eq!(m.procs.iter().map(|p| p.tasks).sum::<u64>(), 2);
        // One message logged, one hop, over link (0,1).
        assert_eq!(m.messages.len(), 1);
        let msg = &m.messages[0];
        assert_eq!((msg.src_proc, msg.dst_proc), (0, 1));
        assert_eq!(msg.src_task, 0);
        assert_eq!(msg.dst_tasks, vec![1]);
        assert_eq!(msg.hops, 1);
        assert_eq!(msg.send_start, 1);
        assert_eq!(msg.send_end, 13);
        assert_eq!(msg.arrival, 13);
        assert_eq!(m.hops.count(), 1);
        assert_eq!(m.links.get(&(0, 1)).unwrap().messages, 1);
        assert_eq!(m.links.get(&(0, 1)).unwrap().busy_ticks, 12);
    }

    #[test]
    fn metrics_do_not_change_timing() {
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (0, 3), (1, 2), (1, 3)],
            vec![0, 1, 0, 1],
            3,
            2,
        );
        for contention in [false, true] {
            for t_recv in [0u64, 3] {
                let mut plain = config(1);
                plain.link_contention = contention;
                plain.params = plain.params.with_recv(t_recv);
                plain.record_trace = true;
                let mut metered = plain;
                metered.collect_metrics = true;
                let a = simulate(&prog, &plain).unwrap();
                let b = simulate(&prog, &metered).unwrap();
                let ctx = format!("contention={contention} t_recv={t_recv}");
                assert_eq!(a.makespan, b.makespan, "{ctx}");
                assert_eq!(a.compute, b.compute, "{ctx}");
                assert_eq!(a.comm, b.comm, "{ctx}");
                // The full event-level task trace is bit-identical, not
                // just the aggregates.
                assert_eq!(a.trace, b.trace, "{ctx}");
                assert!(a.metrics.is_none());
                assert!(b.metrics.is_some());
            }
        }
    }

    #[test]
    fn metrics_record_link_wait_under_contention() {
        // Two senders share the (0b01, 0b11) link under e-cube routing.
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (1, 3)],
            vec![0, 1, 3, 3],
            1,
            4,
        );
        let mut cfg = config(2);
        cfg.link_contention = true;
        cfg.collect_metrics = true;
        let r = simulate(&prog, &cfg).unwrap();
        let m = r.metrics.as_ref().unwrap();
        let shared = m.links.get(&(0b01, 0b11)).unwrap();
        assert_eq!(shared.messages, 2);
        assert!(shared.wait_ticks > 0, "shared link should queue");
        assert_eq!(m.total_link_wait(), shared.wait_ticks);
        assert_eq!(m.hottest_link().unwrap().0, (0b01, 0b11));
    }

    #[test]
    fn derived_report_helpers() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        // makespan 14; proc0 busy 1+12, proc1 busy 1.
        assert_eq!(r.idle_ticks(), vec![1, 13]);
        assert_eq!(r.comm_to_compute_ratio(), 6.0); // 12 comm / 2 compute
        let util = r.per_proc_utilization();
        assert!((util[0] - 13.0 / 14.0).abs() < 1e-12);
        assert!((util[1] - 1.0 / 14.0).abs() < 1e-12);
        // Degenerate empty report.
        let empty = SimReport {
            makespan: 0,
            compute: vec![0],
            comm: vec![0],
            messages: 0,
            words: 0,
            trace: None,
            metrics: None,
            degradation: None,
        };
        assert_eq!(empty.idle_ticks(), vec![0]);
        assert_eq!(empty.comm_to_compute_ratio(), 0.0);
        assert_eq!(empty.per_proc_utilization(), vec![0.0]);
    }

    #[test]
    fn report_helpers_zero_makespan() {
        // A single zero-flop task: the run finishes at tick 0.
        let prog = Program::from_parts(vec![0], vec![], vec![0], 0, 1);
        let r = simulate(&prog, &config(0)).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.max_proc_occupancy(), 0);
        assert_eq!(r.idle_ticks(), vec![0]);
        assert_eq!(r.comm_to_compute_ratio(), 0.0);
        assert_eq!(r.per_proc_utilization(), vec![0.0]);
    }

    #[test]
    fn report_helpers_compute_free_program() {
        // Zero-flop tasks across two processors: all occupancy is comm.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 0, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        assert_eq!(r.compute, vec![0, 0]);
        assert!(r.comm[0] > 0, "the message still costs wire time");
        // The guarded ratio must not divide by zero.
        assert_eq!(r.comm_to_compute_ratio(), 0.0);
        assert_eq!(r.max_proc_occupancy(), r.comm[0]);
        let idle = r.idle_ticks();
        assert_eq!(idle[0], r.makespan - r.comm[0]);
        assert_eq!(idle[1], r.makespan);
        let util = r.per_proc_utilization();
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn report_helpers_single_processor_run() {
        // One processor, never idle: utilization exactly 1.
        let prog = Program::from_parts(vec![0, 1, 2], vec![(0, 1), (1, 2)], vec![0, 0, 0], 3, 1);
        let r = simulate(&prog, &config(0)).unwrap();
        assert_eq!(r.max_proc_occupancy(), r.makespan);
        assert_eq!(r.idle_ticks(), vec![0]);
        assert_eq!(r.comm_to_compute_ratio(), 0.0);
        assert_eq!(r.per_proc_utilization(), vec![1.0]);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn chain_prog() -> Program {
        // proc0 → proc1 → proc2 → proc3 chain across a 2-cube.
        Program::from_parts(
            vec![0, 1, 2, 3],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![0, 1, 2, 3],
            2,
            4,
        )
    }

    #[test]
    fn empty_plan_matches_baseline_exactly() {
        let prog = chain_prog();
        let cfg = config(2);
        let base = simulate(&prog, &cfg).unwrap();
        let fc = FaultConfig::new(FaultPlan::none(), RecoveryPolicy::RetryOnly);
        let r = simulate_with_faults(&prog, &cfg, &fc).unwrap();
        assert_eq!(r.makespan, base.makespan);
        assert_eq!(r.compute, base.compute);
        assert_eq!(r.comm, base.comm);
        assert_eq!(r.messages, base.messages);
        assert_eq!(r.words, base.words);
        assert_eq!(r.trace, base.trace);
        let deg = r.degradation.unwrap();
        assert_eq!(deg.faults_hit, 0);
        assert_eq!(deg.baseline_makespan, base.makespan);
        assert_eq!(deg.degraded_makespan, base.makespan);
        assert_eq!(deg.makespan_inflation(), 0.0);
    }

    #[test]
    fn message_drops_retry_and_inflate_makespan() {
        let prog = chain_prog();
        let cfg = config(2);
        // Drop every message on its first attempts: per-mille 1000.
        let plan = FaultPlan {
            retry_timeout: 8,
            ..FaultPlan::message_noise(42, 500, 0, 0)
        };
        let fc = FaultConfig::new(plan, RecoveryPolicy::RetryOnly);
        let r = simulate_with_faults(&prog, &cfg, &fc).unwrap();
        let deg = r.degradation.as_ref().unwrap();
        assert!(deg.drops > 0, "500‰ over several messages must drop some");
        assert_eq!(deg.retries, deg.drops + deg.corruptions);
        assert!(deg.retransmitted_words > 0);
        assert!(deg.degraded_makespan > deg.baseline_makespan);
        assert!(deg.makespan_inflation() > 0.0);
        // Attempts show up in the traffic counters.
        assert!(r.messages > 3);
    }

    #[test]
    fn identical_seeds_reproduce_identical_degradation() {
        let prog = chain_prog();
        let cfg = config(2);
        let plan = FaultPlan::message_noise(7, 300, 100, 200);
        let a = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan.clone(), RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        let b = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn abort_policy_fails_on_first_drop() {
        let prog = chain_prog();
        let cfg = config(2);
        let plan = FaultPlan::message_noise(1, 1000, 0, 0); // drop everything
        let err = simulate_with_faults(&prog, &cfg, &FaultConfig::new(plan, RecoveryPolicy::Abort))
            .unwrap_err();
        assert!(matches!(err, SimError::Unrecoverable { .. }), "got {err:?}");
    }

    #[test]
    fn retries_are_bounded() {
        let prog = chain_prog();
        let cfg = config(2);
        let plan = FaultPlan {
            max_retries: 3,
            retry_timeout: 4,
            ..FaultPlan::message_noise(1, 1000, 0, 0) // drop everything forever
        };
        let err = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap_err();
        match err {
            SimError::Unrecoverable { fault, .. } => {
                assert!(fault.contains("abandoned"), "{fault}")
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn transient_link_outage_reroutes() {
        // proc0 → proc1 on a 2-cube with link (0,1) down for the whole
        // run: the message must detour 0→2→3→1 (3 hops) and still land.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 4);
        let cfg = config(2);
        let plan = FaultPlan::none().with_event(FaultEvent::LinkDown {
            from: 0,
            to: 1,
            at: 0,
            until: Some(1_000_000),
        });
        let r = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        let deg = r.degradation.as_ref().unwrap();
        assert_eq!(deg.reroutes, 1);
        // 3 hops instead of 1: arrival 1 + 3·12 = 37, completion 38.
        assert_eq!(r.makespan, 38);
        assert!(deg.makespan_inflation() > 0.0);
    }

    #[test]
    fn permanent_partition_is_unroutable() {
        // On a 2-node ring there is no detour: cutting 0→1 for good
        // makes the pair unroutable.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = config(1);
        cfg.topology = Topology::Ring(2);
        let plan = FaultPlan::none().with_event(FaultEvent::LinkDown {
            from: 0,
            to: 1,
            at: 0,
            until: None,
        });
        let err = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap_err();
        assert_eq!(err, SimError::Unroutable { src: 0, dst: 1 });
    }

    #[test]
    fn short_outage_retries_until_link_returns() {
        // Same 2-node ring, but the outage ends at tick 40: the send
        // backs off and succeeds once the link is back.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = config(1);
        cfg.topology = Topology::Ring(2);
        let plan = FaultPlan {
            retry_timeout: 16,
            ..FaultPlan::none().with_event(FaultEvent::LinkDown {
                from: 0,
                to: 1,
                at: 0,
                until: Some(40),
            })
        };
        let r = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        let deg = r.degradation.as_ref().unwrap();
        assert!(deg.faults_hit > 0);
        assert!(r.makespan > 14, "outage must delay the 14-tick baseline");
    }

    #[test]
    fn slowdown_inflates_compute() {
        let prog = chain_prog();
        let cfg = config(2);
        let plan = FaultPlan::none().with_event(FaultEvent::ProcSlow {
            proc: 0,
            factor: 5,
            at: 0,
            until: None,
        });
        let r = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        let deg = r.degradation.as_ref().unwrap();
        assert_eq!(r.compute[0], 10, "2 flops × 5 slowdown");
        assert!(deg.faults_hit > 0);
        assert!(deg.degraded_makespan > deg.baseline_makespan);
    }

    #[test]
    fn crash_under_retry_only_is_unrecoverable() {
        let prog = chain_prog();
        let cfg = config(2);
        let plan = FaultPlan::none().with_crash(2, 1);
        let err = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap_err();
        match err {
            SimError::Unrecoverable { fault, task, .. } => {
                assert!(fault.contains("P2 fail-stopped"), "{fault}");
                assert_eq!(task, Some(2));
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn crash_with_remap_completes_and_charges_state_transfer() {
        let prog = chain_prog();
        let cfg = config(2);
        let plan = FaultPlan::none().with_crash(2, 1);
        let r = simulate_with_faults(&prog, &cfg, &FaultConfig::new(plan, RecoveryPolicy::Remap))
            .unwrap();
        let deg = r.degradation.as_ref().unwrap();
        assert_eq!(deg.crashes, 1);
        assert!(deg.remapped_tasks >= 1);
        assert!(deg.state_transfer_words > 0);
        assert!(deg.state_transfer_ticks > 0);
        // P2's Gray-code nearest survivor is P0 (distance 1, lowest id).
        assert!(
            r.compute[2] == 0 || r.comm[2] == 0,
            "dead proc does no new work"
        );
        // Every task still completed exactly once.
        assert_eq!(r.trace.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn crash_after_completion_is_harmless() {
        let prog = chain_prog();
        let cfg = config(2);
        let base = simulate(&prog, &cfg).unwrap();
        let plan = FaultPlan::none().with_crash(1, base.makespan + 1_000);
        let r = simulate_with_faults(&prog, &cfg, &FaultConfig::new(plan, RecoveryPolicy::Abort))
            .unwrap();
        assert_eq!(r.makespan, base.makespan);
        let deg = r.degradation.unwrap();
        assert_eq!(deg.crashes, 1);
        assert_eq!(deg.remapped_tasks, 0);
    }

    #[test]
    fn determinism() {
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (0, 3), (1, 2), (1, 3)],
            vec![0, 1, 0, 1],
            3,
            2,
        );
        let a = simulate(&prog, &config(1)).unwrap();
        let b = simulate(&prog, &config(1)).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.compute, b.compute);
        assert_eq!(a.comm, b.comm);
    }
}
