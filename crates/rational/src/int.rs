//! Integer number-theory helpers used by the rational types and the
//! lattice computations in the partitioner.

/// Greatest common divisor of two integers, always non-negative.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// ```
/// use loom_rational::int::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 7), 7);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple of two integers, always non-negative.
///
/// Panics on overflow. `lcm(0, x) = 0`.
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`
/// and `g >= 0`.
pub fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// GCD of a slice; `0` for an empty slice or an all-zero slice.
pub fn gcd_all(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// LCM of a slice; `1` for an empty slice. Panics on overflow or if any
/// element is zero (an LCM over zeros is not meaningful for our callers,
/// which use it to clear denominators).
pub fn lcm_all(xs: &[i64]) -> i64 {
    xs.iter().fold(1, |l, &x| {
        assert!(x != 0, "lcm_all over a zero element");
        lcm(l, x)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(4, -6), 2);
        assert_eq!(gcd(-4, -6), 2);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(i64::MIN + 1, 1), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(7, 1), 7);
    }

    #[test]
    fn ext_gcd_bezout() {
        for &(a, b) in &[(12i64, 18), (-12, 18), (12, -18), (0, 5), (5, 0), (7, 13)] {
            let (g, x, y) = ext_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a * x + b * y, g, "bezout identity for ({a},{b})");
        }
    }

    #[test]
    fn gcd_all_slice() {
        assert_eq!(gcd_all(&[]), 0);
        assert_eq!(gcd_all(&[0, 0]), 0);
        assert_eq!(gcd_all(&[8, 12, 20]), 4);
        assert_eq!(gcd_all(&[-8, 12]), 4);
    }

    #[test]
    fn lcm_all_slice() {
        assert_eq!(lcm_all(&[]), 1);
        assert_eq!(lcm_all(&[2, 3, 4]), 12);
        assert_eq!(lcm_all(&[-2, 3]), 6);
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn lcm_all_zero_panics() {
        lcm_all(&[2, 0]);
    }
}
