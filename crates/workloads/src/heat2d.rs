//! Time-stepped 2-D heat diffusion — a 3-deep nest whose dependence
//! vectors have *negative* spatial components, unlike every loop in the
//! paper. The skewed time function `Π = (2,1,1)` is the least legal
//! wavefront.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// `u[t+1, x, y] = (u[t,x,y] + u[t,x−1,y] + u[t,x+1,y] + u[t,x,y−1] +
/// u[t,x,y+1]) / 5` over `steps × size × size` (interior sweep:
/// `1 ≤ x, y ≤ size`, with the boundary supplied by the init function).
///
/// Dependences `{(1,−1,0), (1,0,−1), (1,0,0), (1,0,1), (1,1,0)}`:
/// every vector advances one time step but may move *backwards* in
/// space, so the plain wavefront `(1,1,1)` is illegal
/// (`(1,1,1)·(1,−1,0) = 0`) and the skewed `(2,1,1)` is needed.
pub fn workload(steps: i64, size: i64) -> Workload {
    let n = 3;
    let nest = LoopNest::new(
        "heat2d",
        IterSpace::rect_bounds(&[0, 1, 1], &[steps - 1, size, size]).expect("positive extents"),
        vec![Stmt::assign(
            Access::simple("u", n, &[(0, 1), (1, 0), (2, 0)]),
            vec![
                Access::simple("u", n, &[(0, 0), (1, 0), (2, 0)]),
                Access::simple("u", n, &[(0, 0), (1, -1), (2, 0)]),
                Access::simple("u", n, &[(0, 0), (1, 1), (2, 0)]),
                Access::simple("u", n, &[(0, 0), (1, 0), (2, -1)]),
                Access::simple("u", n, &[(0, 0), (1, 0), (2, 1)]),
            ],
        )
        .with_flops(5)
        .with_expr(Expr::mul(
            Expr::add(
                Expr::add(
                    Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
                    Expr::Read(3),
                ),
                Expr::Read(4),
            ),
            Expr::Const(0.2),
        ))],
    )
    .expect("heat2d is well-formed");
    Workload {
        nest,
        deps: vec![
            vec![1, -1, 0],
            vec![1, 0, -1],
            vec![1, 0, 0],
            vec![1, 0, 1],
            vec![1, 1, 0],
        ],
        pi: vec![2, 1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;

    #[test]
    fn deps_verify() {
        workload(4, 4).verified_deps();
    }

    #[test]
    fn plain_wavefront_is_illegal_but_skew_works() {
        let w = workload(4, 4);
        assert!(!TimeFn::new(vec![1, 1, 1]).is_legal_for(&w.deps));
        assert!(w.pi_is_legal());
    }

    #[test]
    fn search_finds_a_schedule_as_good_as_skew() {
        let w = workload(4, 6);
        let found = loom_hyperplane::find_optimal(
            &w.deps,
            w.nest.space(),
            loom_hyperplane::SearchConfig::default(),
        )
        .unwrap();
        let skew = TimeFn::new(w.pi.clone());
        assert!(found.steps(w.nest.space()) <= skew.steps(w.nest.space()));
    }

    #[test]
    fn partitions_lawfully() {
        let w = workload(4, 5);
        let p = loom_partition::partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &loom_partition::PartitionConfig::default(),
        )
        .unwrap();
        assert!(loom_partition::laws::check_all(&p).is_empty());
        let covered: usize = p.blocks().iter().map(Vec::len).sum();
        assert_eq!(covered, w.nest.space().count());
    }
}
