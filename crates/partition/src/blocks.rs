//! Step 6 of Algorithm 1: materializing partitioned blocks, plus the
//! top-level [`partition`] entry point.

use crate::grouping::{select_vectors, GroupingVectors};
use crate::grow::{grow, Grouping, GrowConfig};
use crate::project::{ComputationalStructure, ProjectedStructure};
use crate::Error;
use loom_hyperplane::TimeFn;
use loom_loopir::{IterSpace, Point};
use loom_rational::QVec;

/// Options for [`partition`] — the "arbitrary" choices Algorithm 1
/// leaves open, pinned for reproducibility and exposed for ablation.
#[derive(Clone, Debug, Default)]
pub struct PartitionConfig {
    /// Force a particular dependence (by index into the dependence set)
    /// to be the grouping vector. Must achieve the maximal multiplier.
    pub grouping_choice: Option<usize>,
    /// Base vertex of the first group (Step 3's arbitrary line/point).
    pub seed: Option<QVec>,
}

/// The complete output of Algorithm 1: the partitioning `G_Π(Q)`.
#[derive(Clone, Debug)]
pub struct Partitioning {
    cs: ComputationalStructure,
    qp: ProjectedStructure,
    vectors: GroupingVectors,
    grouping: Grouping,
    /// Iteration-point ids per block, ordered by execution step.
    blocks: Vec<Vec<usize>>,
    /// Block id of every iteration point.
    block_of: Vec<usize>,
}

impl Partitioning {
    /// The computational structure `Q`.
    pub fn structure(&self) -> &ComputationalStructure {
        &self.cs
    }

    /// The projected structure `Q^p`.
    pub fn projected(&self) -> &ProjectedStructure {
        &self.qp
    }

    /// The selected grouping/auxiliary vectors.
    pub fn vectors(&self) -> &GroupingVectors {
        &self.vectors
    }

    /// The groups of projected points.
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// Number of blocks `α`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iteration-point ids of block `b`, sorted by execution step.
    pub fn block(&self, b: usize) -> &[usize] {
        &self.blocks[b]
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// Block id of iteration point `id`.
    pub fn block_of(&self, id: usize) -> usize {
        self.block_of[id]
    }

    /// Size of the largest block (the paper's `W` determines the busiest
    /// processor's computation time).
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The time function in use.
    pub fn time_fn(&self) -> &TimeFn {
        self.qp.time_fn()
    }
}

/// Run Algorithm 1 end to end.
///
/// Validates Π against the dependence set, projects, selects vectors,
/// grows groups, and materializes blocks.
///
/// ```
/// use loom_hyperplane::TimeFn;
/// use loom_loopir::IterSpace;
/// use loom_partition::{partition, PartitionConfig};
/// let space = IterSpace::rect(&[4, 4]).unwrap();
/// let deps = vec![vec![0, 1], vec![1, 1], vec![1, 0]];
/// let p = partition(space, deps, TimeFn::new(vec![1, 1]),
///                   &PartitionConfig::default()).unwrap();
/// assert_eq!(p.num_blocks(), 4); // the paper's B₀…B₃ (+ boundary B₄ merged…)
/// ```
pub fn partition(
    space: IterSpace,
    deps: Vec<Point>,
    pi: TimeFn,
    config: &PartitionConfig,
) -> Result<Partitioning, Error> {
    pi.check_legal(&deps)?;
    let cs = ComputationalStructure::new(space, deps)?;
    let qp = ProjectedStructure::project(&cs, &pi);
    let vectors = select_vectors(&qp, config.grouping_choice)?;
    let grouping = grow(
        &qp,
        &vectors,
        &GrowConfig {
            seed: config.seed.clone(),
        },
    );

    // Step 6: B_i = ∪ over v_k^p ∈ G_i of the projection line's points.
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); grouping.len()];
    let mut block_of = vec![usize::MAX; cs.len()];
    for (pid, &gid) in grouping.group_of.iter().enumerate() {
        for &point_id in qp.line_members(pid) {
            blocks[gid].push(point_id);
            block_of[point_id] = gid;
        }
    }
    for b in &mut blocks {
        b.sort_by_key(|&id| pi.time_of(&cs.points()[id]));
    }

    Ok(Partitioning {
        cs,
        qp,
        vectors,
        grouping,
        blocks,
        block_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> Partitioning {
        partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn l1_four_blocks_cover_all_points() {
        let p = l1();
        assert_eq!(p.num_blocks(), 4);
        let total: usize = p.blocks().iter().map(Vec::len).sum();
        assert_eq!(total, 16);
        for id in 0..16 {
            let b = p.block_of(id);
            assert!(p.block(b).contains(&id));
        }
    }

    #[test]
    fn l1_largest_block_holds_main_diagonal() {
        // The group containing lines i−j = 0 and i−j = ±1 has 4 + 3 = 7
        // points — the busiest processor in the paper's analysis.
        let p = l1();
        assert_eq!(p.max_block_size(), 7);
    }

    #[test]
    fn illegal_time_fn_rejected() {
        let e = partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1]],
            TimeFn::new(vec![1, -1]),
            &PartitionConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(e, Error::IllegalTimeFn(_)));
    }

    #[test]
    fn blocks_time_ordered() {
        let p = l1();
        for b in 0..p.num_blocks() {
            let times: Vec<i64> = p
                .block(b)
                .iter()
                .map(|&id| p.time_fn().time_of(&p.structure().points()[id]))
                .collect();
            for w in times.windows(2) {
                assert!(w[0] < w[1], "block not strictly time-ordered (Lemma 1)");
            }
        }
    }

    #[test]
    fn matmul_blocks() {
        let p = partition(
            IterSpace::rect(&[4, 4, 4]).unwrap(),
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            TimeFn::wavefront(3),
            &PartitionConfig {
                grouping_choice: Some(0),
                seed: Some(QVec::from_ints(&[-1, -1, 2])),
            },
        )
        .unwrap();
        assert_eq!(p.num_blocks(), 17);
        let total: usize = p.blocks().iter().map(Vec::len).sum();
        assert_eq!(total, 64);
    }
}
