//! Configuration exploration: let the cost model choose the compile.
//!
//! The paper fixes Π and the grouping vector by hand; a compiler has to
//! *choose* them. [`explore`] sweeps the legal time transformations
//! within a coefficient bound, every maximal grouping-vector choice, and
//! the requested machine sizes, simulates each configuration, and ranks
//! by makespan. Deterministic: ties break toward smaller Π, smaller
//! grouping index, smaller machine.
//!
//! The sweep is organised for throughput without giving up determinism
//! (see `docs/PERFORMANCE.md`):
//!
//! * **stage caching** — dependence extraction runs once per nest, and
//!   the partitioning prefix of the pipeline
//!   ([`Pipeline::stage_partition_with_deps`]) runs once per
//!   (Π, grouping) pair, shared across every machine size;
//! * **parallelism** — (Π, grouping) pairs fan out over a
//!   [`loom_obs::Pool`], whose `map_indexed` returns results in input
//!   order whatever order the workers ran; each worker reuses one
//!   [`SimScratch`] across all its simulations;
//! * **branch-and-bound pruning** — a candidate whose analytic lower
//!   bound ([`crate::analytic::makespan_lower_bound`]) already exceeds
//!   the current k-th best simulated makespan cannot enter the top-k
//!   and is skipped (`explore.pruned` counts them). Pruning is disabled
//!   when `top == 0` (every candidate is kept) and under fault
//!   injection (crash remap can beat the fault-free bound).
//!
//! The ranked candidate list is **byte-identical** across thread counts
//! and with pruning on or off; `tests-int/tests/explore.rs` asserts it
//! for every builtin workload.

use crate::analytic::makespan_lower_bound_with;
use crate::pipeline::{run_machine, MachineOptions, Pipeline, PipelineConfig, PipelineError};
use crate::symbolic_cost::{self, Derivation, DeriveOptions, NestFamily, ProbeCache};
use loom_hyperplane::TimeFn;
use loom_loopir::{DepOptions, LoopNest};
use loom_machine::SimScratch;
use loom_obs::{Pool, Recorder};
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// One explored configuration and its simulated outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The time transformation.
    pub pi: Vec<i64>,
    /// The grouping-vector index (into the dependence set).
    pub grouping: usize,
    /// Hypercube dimension.
    pub cube_dim: usize,
    /// Simulated makespan.
    pub makespan: u64,
    /// Messages sent.
    pub messages: u64,
    /// Number of blocks.
    pub blocks: usize,
}

/// Symbolic exploration: rank candidates by closed-form `T_exec`
/// instead of simulating each one at the target size.
///
/// `nest` passed to [`explore`] **must** be `family(size)`'s nest —
/// the closed forms are derived over `family` and evaluated at `size`,
/// while dependence extraction and Π enumeration read the nest. A
/// configuration whose derivation comes back
/// [`Derivation::Unknown`] falls back to simulating at the target size
/// (counted by `explore.symbolic.fallback`), so the ranking is always
/// populated; [`Derivation::Infeasible`] configurations are skipped
/// exactly as the simulating explorer skips partition/mapping failures.
///
/// Pruning does not apply (formula evaluation is already O(1)), and
/// `machine.static_check` is honoured only on the fallback path — an
/// exact candidate never materialises its target-size partitioning.
#[derive(Clone)]
pub struct SymbolicExplore {
    /// The size family the explored nest belongs to.
    pub family: NestFamily,
    /// The target size parameter: `family(size)` must equal the nest
    /// being explored.
    pub size: i64,
    /// Probe-and-fit protocol knobs.
    pub opts: DeriveOptions,
}

impl std::fmt::Debug for SymbolicExplore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicExplore")
            .field("family", &"<fn>")
            .field("size", &self.size)
            .field("opts", &self.opts)
            .finish()
    }
}

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Π coefficients searched in `[-bound, bound]`.
    pub pi_bound: i64,
    /// Keep only the `top` best candidates (0 = all).
    pub top: usize,
    /// Machine options used for every simulation.
    pub machine: MachineOptions,
    /// Worker threads for the candidate sweep: `0` = auto
    /// (`LOOM_THREADS`, then the machine's parallelism), `1` = the
    /// exact serial path. The ranked result is identical either way.
    pub threads: usize,
    /// Branch-and-bound pruning: skip simulating candidates whose
    /// analytic lower bound already exceeds the current k-th best
    /// makespan. Never changes the ranked result set.
    pub prune: bool,
    /// Rank by closed-form `T_exec` (the symbolic cost engine) instead
    /// of simulating every candidate at the target size.
    pub symbolic: Option<SymbolicExplore>,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            pi_bound: 1,
            top: 10,
            machine: MachineOptions::default(),
            threads: 0,
            prune: true,
            symbolic: None,
        }
    }
}

/// Enumerate legal Π within the bound, sorted by (steps, L1 norm, lex).
fn legal_pis(nest: &LoopNest, deps: &[Vec<i64>], bound: i64) -> Vec<Vec<i64>> {
    let n = nest.dim();
    let mut out = Vec::new();
    let mut coeffs = vec![-bound; n];
    loop {
        let pi = TimeFn::new(coeffs.clone());
        if pi.is_legal_for(deps) {
            out.push(coeffs.clone());
        }
        let mut k = n;
        loop {
            if k == 0 {
                // Precompute the sort key once per candidate instead of
                // rebuilding a TimeFn inside the comparator.
                let mut keyed: Vec<(i64, i64, Vec<i64>)> = out
                    .into_iter()
                    .map(|c| {
                        let steps = TimeFn::new(c.clone()).steps(nest.space());
                        let l1 = c.iter().map(|x| x.abs()).sum::<i64>();
                        (steps, l1, c)
                    })
                    .collect();
                keyed.sort();
                return keyed.into_iter().map(|(_, _, c)| c).collect();
            }
            k -= 1;
            if coeffs[k] < bound {
                coeffs[k] += 1;
                for c in &mut coeffs[k + 1..] {
                    *c = -bound;
                }
                break;
            }
        }
    }
}

/// The shared branch-and-bound gate: a max-heap of the `cap` smallest
/// simulated makespans seen so far. A candidate is pruned only when the
/// heap is full **and** its lower bound is *strictly* greater than the
/// k-th best — ties must still be simulated because the final ranking
/// breaks them on secondary keys.
struct PruneGate {
    heap: BinaryHeap<u64>,
    cap: usize,
}

impl PruneGate {
    fn new(cap: usize) -> PruneGate {
        PruneGate {
            heap: BinaryHeap::new(),
            cap,
        }
    }

    fn should_prune(&self, bound: u64) -> bool {
        self.cap > 0 && self.heap.len() == self.cap && bound > *self.heap.peek().unwrap()
    }

    fn record(&mut self, makespan: u64) {
        if self.cap == 0 {
            return;
        }
        if self.heap.len() < self.cap {
            self.heap.push(makespan);
        } else if makespan < *self.heap.peek().unwrap() {
            self.heap.pop();
            self.heap.push(makespan);
        }
    }
}

/// The seed implementation of [`explore`], kept as the determinism
/// oracle and the bench baseline: fully serial, no pruning, no stage
/// caching — the entire pipeline (dependences → Π → partitioning → TIG
/// → mapping → simulation) re-runs for every (Π, grouping, cube_dim)
/// triple. `config.threads` and `config.prune` are ignored.
/// [`explore`] must return a byte-identical ranked list;
/// `tests-int/tests/explore.rs` and `repro_explore` both enforce it.
pub fn explore_reference(
    nest: &LoopNest,
    cube_dims: &[usize],
    config: &ExploreConfig,
) -> Result<Vec<Candidate>, PipelineError> {
    let deps = crate::pipeline::admitted_dependence_vectors(
        nest,
        DepOptions::default(),
        true,
        &Recorder::disabled(),
    )?;
    let pis = legal_pis(nest, &deps, config.pi_bound);
    let mut results: Vec<Candidate> = Vec::new();
    for pi in &pis {
        for grouping in 0..deps.len() {
            for &cube_dim in cube_dims {
                let run = Pipeline::new(nest.clone()).run(&PipelineConfig {
                    time_fn: Some(pi.clone()),
                    cube_dim,
                    partition: loom_partition::PartitionConfig {
                        grouping_choice: Some(grouping),
                        seed: None,
                    },
                    machine: Some(config.machine.clone()),
                    ..Default::default()
                });
                match run {
                    Ok(out) => {
                        let sim = out.sim.as_ref().ok_or(PipelineError::NoSimulation)?;
                        results.push(Candidate {
                            pi: pi.clone(),
                            grouping,
                            cube_dim,
                            makespan: sim.makespan,
                            messages: sim.messages,
                            blocks: out.partitioning.num_blocks(),
                        });
                    }
                    // Grouping choice not maximal, or cube too large:
                    // legitimate skips during exploration.
                    Err(PipelineError::Partition(_)) | Err(PipelineError::Mapping(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    results.sort_by_key(|c| {
        (
            c.makespan,
            c.pi.iter().map(|x| x.abs()).sum::<i64>(),
            c.pi.clone(),
            c.grouping,
            c.cube_dim,
        )
    });
    if config.top > 0 {
        results.truncate(config.top);
    }
    Ok(results)
}

/// Explore configurations for a nest across the given hypercube
/// dimensions; returns candidates ranked by simulated makespan.
///
/// Configurations whose mapping fails (machine larger than the block
/// count) are skipped silently; other pipeline failures propagate.
pub fn explore(
    nest: &LoopNest,
    cube_dims: &[usize],
    config: &ExploreConfig,
) -> Result<Vec<Candidate>, PipelineError> {
    explore_with(nest, cube_dims, config, &Recorder::disabled())
}

/// [`explore`] with instrumentation: `explore.candidates` /
/// `explore.simulated` / `explore.pruned` counters, `pool.*` counters
/// and per-worker busy spans, and an `explore.total` span.
pub fn explore_with(
    nest: &LoopNest,
    cube_dims: &[usize],
    config: &ExploreConfig,
    recorder: &Recorder,
) -> Result<Vec<Candidate>, PipelineError> {
    if let Some(sym) = &config.symbolic {
        return explore_symbolic(nest, cube_dims, config, sym, recorder);
    }
    let _total = recorder.span("explore.total");
    let deps =
        crate::pipeline::admitted_dependence_vectors(nest, DepOptions::default(), true, recorder)?;
    let pis = legal_pis(nest, &deps, config.pi_bound);
    let pipeline = Pipeline::new(nest.clone());

    // One work item per (Π, grouping) pair: the partitioning prefix of
    // the pipeline runs once per pair and is completed per cube_dim.
    let pairs: Vec<(usize, usize)> = (0..pis.len())
        .flat_map(|p| (0..deps.len()).map(move |g| (p, g)))
        .collect();
    recorder.add("explore.candidates", (pairs.len() * cube_dims.len()) as u64);

    // Pruning is sound only when a k-th best exists to compare against
    // (top > 0) and the machine is fault-free (crash remap can beat the
    // fault-free lower bound; see A8 in EXPERIMENTS.md).
    let pruning = config.prune && config.top > 0 && config.machine.faults.is_none();
    let gate = Mutex::new(PruneGate::new(if pruning { config.top } else { 0 }));

    let pool = Pool::with_recorder(config.threads, recorder.clone());
    type PairOutcome = Result<(Vec<Candidate>, u64, u64), PipelineError>;
    let outcomes: Vec<PairOutcome> = pool.map_indexed_with(
        &pairs,
        SimScratch::default,
        |scratch, _idx, &(pi_idx, grouping)| {
            // Per-candidate pipeline stages run un-instrumented: the
            // sweep-level counters above are the meaningful signal, and
            // thousands of interleaved stage spans are not.
            let rec = Recorder::disabled();
            let pi = &pis[pi_idx];
            let base = PipelineConfig {
                time_fn: Some(pi.clone()),
                partition: loom_partition::PartitionConfig {
                    grouping_choice: Some(grouping),
                    seed: None,
                },
                machine: Some(config.machine.clone()),
                ..Default::default()
            };
            let mut found = Vec::new();
            let (mut pruned, mut simulated) = (0u64, 0u64);
            let stage = match pipeline.stage_partition_with_deps(&base, &rec, deps.clone()) {
                Ok(stage) => stage,
                // Grouping choice not maximal: a legitimate skip.
                Err(PipelineError::Partition(_)) => return Ok((found, pruned, simulated)),
                Err(e) => return Err(e),
            };
            for &cube_dim in cube_dims {
                let cfg = PipelineConfig {
                    cube_dim,
                    ..base.clone()
                };
                let (mapping, placement, target) = match stage.map_with(&cfg, &rec) {
                    Ok(x) => x,
                    // Cube too large for the block count: skip.
                    Err(PipelineError::Mapping(_)) => continue,
                    Err(e) => return Err(e),
                };
                if config.machine.static_check {
                    stage.check_with(&mapping, &rec)?;
                }
                let program = stage.program(&placement);
                if pruning {
                    // The link-occupancy term is sound only when the
                    // simulation serializes links.
                    let topology = config.machine.link_contention.then(|| target.topology());
                    let bound = makespan_lower_bound_with(
                        &program,
                        &config.machine.params,
                        config.machine.words_per_arc,
                        config.machine.batch_messages,
                        topology.as_ref(),
                    );
                    if gate.lock().unwrap().should_prune(bound) {
                        pruned += 1;
                        continue;
                    }
                }
                let report = run_machine(&program, target, &config.machine, &rec, Some(scratch))?;
                simulated += 1;
                if pruning {
                    gate.lock().unwrap().record(report.makespan);
                }
                found.push(Candidate {
                    pi: pi.clone(),
                    grouping,
                    cube_dim,
                    makespan: report.makespan,
                    messages: report.messages,
                    blocks: stage.partitioning.num_blocks(),
                });
            }
            Ok((found, pruned, simulated))
        },
    );

    // Merge in input order; the first error in input order propagates,
    // whatever order the workers hit errors in.
    let mut results: Vec<Candidate> = Vec::new();
    let (mut pruned_total, mut simulated_total) = (0u64, 0u64);
    for outcome in outcomes {
        let (found, pruned, simulated) = outcome?;
        results.extend(found);
        pruned_total += pruned;
        simulated_total += simulated;
    }
    recorder.add("explore.pruned", pruned_total);
    recorder.add("explore.simulated", simulated_total);

    results.sort_by_key(|c| {
        (
            c.makespan,
            c.pi.iter().map(|x| x.abs()).sum::<i64>(),
            c.pi.clone(),
            c.grouping,
            c.cube_dim,
        )
    });
    if config.top > 0 {
        results.truncate(config.top);
    }
    Ok(results)
}

/// Per-pair accounting of the symbolic sweep.
#[derive(Clone, Copy, Default)]
struct SymCounts {
    exact: u64,
    fallback: u64,
    infeasible: u64,
    simulated: u64,
    probe_sims: u64,
    probe_points: u64,
}

/// The size-free sweep behind `ExploreConfig::symbolic`: each
/// (Π, grouping) pair derives one closed form per machine size from a
/// shared [`ProbeCache`] (probe partitionings and probe simulations are
/// paid once per pair, not once per cube), evaluates it at the target
/// size in O(1), and only falls back to the simulator on
/// [`Derivation::Unknown`]. Candidate ordering and tie-breaking are the
/// sort key of [`explore`], so exact derivations make the ranked list
/// byte-identical to the simulating path — `tests-int` asserts it per
/// builtin workload.
fn explore_symbolic(
    nest: &LoopNest,
    cube_dims: &[usize],
    config: &ExploreConfig,
    sym: &SymbolicExplore,
    recorder: &Recorder,
) -> Result<Vec<Candidate>, PipelineError> {
    let _total = recorder.span("explore.total");
    let deps =
        crate::pipeline::admitted_dependence_vectors(nest, DepOptions::default(), true, recorder)?;
    let pis = legal_pis(nest, &deps, config.pi_bound);
    let pipeline = Pipeline::new(nest.clone());

    let pairs: Vec<(usize, usize)> = (0..pis.len())
        .flat_map(|p| (0..deps.len()).map(move |g| (p, g)))
        .collect();
    recorder.add("explore.candidates", (pairs.len() * cube_dims.len()) as u64);

    let pool = Pool::with_recorder(config.threads, recorder.clone());
    type PairOutcome = Result<(Vec<Candidate>, SymCounts), PipelineError>;
    let outcomes: Vec<PairOutcome> = pool.map_indexed_with(
        &pairs,
        SimScratch::default,
        |scratch, _idx, &(pi_idx, grouping)| {
            let rec = Recorder::disabled();
            let pi = &pis[pi_idx];
            let pcfg = loom_partition::PartitionConfig {
                grouping_choice: Some(grouping),
                seed: None,
            };
            let mut cache = ProbeCache::new();
            let mut found = Vec::new();
            let mut counts = SymCounts::default();
            // The fallback path's partitioning prefix at the *target*
            // size, built at most once per pair and only if needed.
            let mut stage = None;
            'cubes: for &cube_dim in cube_dims {
                let derived = symbolic_cost::derive(
                    &*sym.family,
                    &deps,
                    pi,
                    &pcfg,
                    cube_dim,
                    sym.size,
                    &config.machine,
                    &sym.opts,
                    &mut cache,
                );
                match derived {
                    Derivation::Exact(cost) => {
                        if let (Some(makespan), Some(messages), Some(blocks)) = (
                            cost.makespan(sym.size),
                            cost.messages_at(sym.size),
                            cost.blocks_at(sym.size),
                        ) {
                            counts.exact += 1;
                            found.push(Candidate {
                                pi: pi.clone(),
                                grouping,
                                cube_dim,
                                makespan,
                                messages,
                                blocks: blocks as usize,
                            });
                            continue 'cubes;
                        }
                        // Overflow at the target: fall through to the
                        // simulator, which shares the explorer's u64
                        // domain.
                    }
                    Derivation::Infeasible { .. } => {
                        counts.infeasible += 1;
                        continue 'cubes;
                    }
                    Derivation::Unknown { .. } => {}
                }
                counts.fallback += 1;
                if stage.is_none() {
                    let base = PipelineConfig {
                        time_fn: Some(pi.clone()),
                        partition: pcfg.clone(),
                        machine: Some(config.machine.clone()),
                        ..Default::default()
                    };
                    match pipeline.stage_partition_with_deps(&base, &rec, deps.clone()) {
                        Ok(s) => stage = Some((s, base)),
                        // Grouping choice not maximal at the target:
                        // skip the pair, as the simulating sweep does.
                        Err(PipelineError::Partition(_)) => break 'cubes,
                        Err(e) => return Err(e),
                    }
                }
                let (stage, base) = stage.as_ref().unwrap();
                let cfg = PipelineConfig {
                    cube_dim,
                    ..base.clone()
                };
                let (mapping, placement, target) = match stage.map_with(&cfg, &rec) {
                    Ok(x) => x,
                    Err(PipelineError::Mapping(_)) => continue 'cubes,
                    Err(e) => return Err(e),
                };
                if config.machine.static_check {
                    stage.check_with(&mapping, &rec)?;
                }
                let program = stage.program(&placement);
                let report = run_machine(&program, target, &config.machine, &rec, Some(scratch))?;
                counts.simulated += 1;
                found.push(Candidate {
                    pi: pi.clone(),
                    grouping,
                    cube_dim,
                    makespan: report.makespan,
                    messages: report.messages,
                    blocks: stage.partitioning.num_blocks(),
                });
            }
            counts.probe_sims = cache.sims();
            counts.probe_points = cache.points_spent();
            Ok((found, counts))
        },
    );

    let mut results: Vec<Candidate> = Vec::new();
    let mut total = SymCounts::default();
    for outcome in outcomes {
        let (found, counts) = outcome?;
        results.extend(found);
        total.exact += counts.exact;
        total.fallback += counts.fallback;
        total.infeasible += counts.infeasible;
        total.simulated += counts.simulated;
        total.probe_sims += counts.probe_sims;
        total.probe_points += counts.probe_points;
    }
    recorder.add("explore.symbolic.exact", total.exact);
    recorder.add("explore.symbolic.fallback", total.fallback);
    recorder.add("explore.symbolic.infeasible", total.infeasible);
    recorder.add("explore.symbolic.probe_sims", total.probe_sims);
    recorder.add("explore.symbolic.probe_points", total.probe_points);
    recorder.add("explore.simulated", total.simulated);

    results.sort_by_key(|c| {
        (
            c.makespan,
            c.pi.iter().map(|x| x.abs()).sum::<i64>(),
            c.pi.clone(),
            c.grouping,
            c.cube_dim,
        )
    });
    if config.top > 0 {
        results.truncate(config.top);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_machine::MachineParams;

    fn cfg() -> ExploreConfig {
        ExploreConfig {
            pi_bound: 1,
            top: 5,
            machine: MachineOptions {
                params: MachineParams::low_latency(),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn explores_and_ranks_matvec() {
        let w = loom_workloads::matvec::workload(12);
        let best = explore(&w.nest, &[1, 2], &cfg()).unwrap();
        assert!(!best.is_empty());
        // Ranked ascending by makespan.
        for pair in best.windows(2) {
            assert!(pair[0].makespan <= pair[1].makespan);
        }
        // The winner must beat (or match) the canonical configuration.
        let canonical = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(cfg().machine),
                ..Default::default()
            })
            .unwrap()
            .sim
            .unwrap()
            .makespan;
        assert!(best[0].makespan <= canonical);
    }

    #[test]
    fn contended_pruning_keeps_the_ranking_byte_identical() {
        // The link-occupancy term only makes the prune gate tighter;
        // the strict top-k inequality means the ranked set (and every
        // tie-broken position in it) must match the unpruned reference.
        let w = loom_workloads::matvec::workload(10);
        let mut config = cfg();
        config.machine.link_contention = true;
        let reference = explore_reference(&w.nest, &[0, 1, 2], &config).unwrap();
        let rec = Recorder::enabled();
        let got = explore_with(&w.nest, &[0, 1, 2], &config, &rec).unwrap();
        assert_eq!(got, reference);
        assert!(!got.is_empty());
    }

    #[test]
    fn respects_top_limit() {
        let w = loom_workloads::l1::workload(4);
        let best = explore(&w.nest, &[0, 1], &cfg()).unwrap();
        assert!(best.len() <= 5);
    }

    #[test]
    fn legal_pis_sorted_and_legal() {
        let w = loom_workloads::sor::workload(5, 5);
        let deps = w.verified_deps();
        let pis = legal_pis(&w.nest, &deps, 1);
        assert!(!pis.is_empty());
        for pi in &pis {
            assert!(TimeFn::new(pi.clone()).is_legal_for(&deps));
        }
        // First candidate minimizes steps.
        let steps: Vec<i64> = pis
            .iter()
            .map(|c| TimeFn::new(c.clone()).steps(w.nest.space()))
            .collect();
        assert!(steps[0] <= *steps.last().unwrap());
        assert_eq!(pis[0], vec![1, 1]);
    }

    #[test]
    fn parallel_and_pruned_match_serial_unpruned() {
        let w = loom_workloads::matvec::workload(10);
        let baseline = explore_reference(&w.nest, &[0, 1, 2], &cfg()).unwrap();
        assert_eq!(
            explore(
                &w.nest,
                &[0, 1, 2],
                &ExploreConfig {
                    threads: 1,
                    prune: false,
                    ..cfg()
                },
            )
            .unwrap(),
            baseline,
            "stage-cached serial must match the seed implementation"
        );
        for threads in [2, 4] {
            for prune in [false, true] {
                let got = explore(
                    &w.nest,
                    &[0, 1, 2],
                    &ExploreConfig {
                        threads,
                        prune,
                        ..cfg()
                    },
                )
                .unwrap();
                assert_eq!(got, baseline, "threads={threads} prune={prune}");
            }
        }
    }

    #[test]
    fn counters_recorded_and_pruning_skips_work() {
        let w = loom_workloads::matvec::workload(10);
        // Serial path: with threads > 1 whether a given candidate is
        // pruned depends on which worker reaches the shared gate first,
        // so the pruned count is timing-dependent under load.
        let count_with = |top: usize, prune: bool| {
            let rec = Recorder::enabled();
            explore_with(
                &w.nest,
                &[0, 1, 2],
                &ExploreConfig {
                    threads: 1,
                    top,
                    prune,
                    ..cfg()
                },
                &rec,
            )
            .unwrap();
            let counters = rec.counters();
            assert!(counters.contains_key("pool.tasks"));
            let candidates = counters["explore.candidates"];
            let simulated = counters["explore.simulated"];
            let pruned = counters["explore.pruned"];
            // The rest were mapping/partition skips.
            assert!(pruned + simulated <= candidates);
            assert!(simulated >= 1);
            (simulated, pruned)
        };
        let (sim_unpruned, p0) = count_with(1, false);
        let (sim_pruned, p1) = count_with(1, true);
        assert_eq!(p0, 0, "prune=false must never prune");
        assert!(
            sim_pruned + p1 == sim_unpruned,
            "pruning only skips simulations"
        );
        assert!(p1 > 0, "top=1 on matvec should prune something");
    }

    #[test]
    fn symbolic_ranking_matches_simulating_explorer() {
        use crate::symbolic_cost::DeriveOptions;
        use std::sync::Arc;
        let size = 14;
        let w = loom_workloads::matvec::workload(size);
        let baseline = explore_reference(&w.nest, &[0, 1, 2], &cfg()).unwrap();
        let rec = Recorder::enabled();
        let got = explore_with(
            &w.nest,
            &[0, 1, 2],
            &ExploreConfig {
                symbolic: Some(SymbolicExplore {
                    family: Arc::new(|n| loom_workloads::matvec::workload(n).nest),
                    size,
                    opts: DeriveOptions::default(),
                }),
                ..cfg()
            },
            &rec,
        )
        .unwrap();
        assert_eq!(
            got, baseline,
            "symbolic ranking must be byte-identical to the simulating sweep"
        );
        let counters = rec.counters();
        assert!(
            counters["explore.symbolic.exact"] > 0,
            "matvec must derive exactly, not ride the fallback: {counters:?}"
        );
    }

    #[test]
    fn top_zero_keeps_everything_and_disables_pruning() {
        let w = loom_workloads::l1::workload(4);
        let rec = Recorder::enabled();
        let all = explore_with(&w.nest, &[0, 1], &ExploreConfig { top: 0, ..cfg() }, &rec).unwrap();
        let counters = rec.counters();
        // No truncation: every simulated candidate is in the result.
        assert_eq!(all.len() as u64, counters["explore.simulated"]);
        assert!(!all.is_empty());
        assert_eq!(counters.get("explore.pruned"), Some(&0));
    }
}
