//! Property harness for the uniformization engine: randomly generated
//! variable-distance nests must either be **admitted with a certificate
//! that re-verifies** and execute bit-identically to the sequential
//! oracle under a folded-set schedule, or be **rejected with evidence**
//! — never silently admitted, never wrongly scheduled. Randomness comes
//! from a seeded [`SplitMix64`] so every run checks the same cases.

use loom_check::{
    admit_uniformized, certify_cover, check_access_dependences_uniformized, Report, UniformizeStats,
};
use loom_core::explore::{explore, ExploreConfig};
use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, execute_in_order, schedule_order, sequential};
use loom_hyperplane::{find_optimal, Schedule, SearchConfig};
use loom_loopir::{parse_nest, Access, Aff, DepOptions, IterSpace, LoopNest, Point, Stmt};
use loom_machine::MachineParams;
use loom_obs::SplitMix64;

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Compare `got` against the golden file at `rel`, regenerating it when
/// `GOLDEN_DUMP=1` is set.
fn assert_golden(rel: &str, got: &str) {
    let path = repo_path(rel);
    if std::env::var("GOLDEN_DUMP").as_deref() == Ok("1") {
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("{path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        got, want,
        "{rel} drifted; regenerate with GOLDEN_DUMP=1 if intentional"
    );
}

fn read_sample(name: &str) -> LoopNest {
    let path = repo_path(&format!("samples/{name}"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_nest(name, &src).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// A random 1-D scaling nest `A[k*i + c] = A[i] + 1` — the canonical
/// variable-distance shape (distance `(k−1)·i + c` grows with `i`).
fn random_scale_nest(rng: &mut SplitMix64, extent: i64) -> LoopNest {
    let k = rng.range_i64(2, 5);
    let c = rng.range_i64(0, 3);
    LoopNest::new(
        format!("scale_k{k}_c{c}"),
        IterSpace::rect(&[extent]).unwrap(),
        vec![Stmt::assign(
            Access::new("A", vec![Aff::new(vec![k], c)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        )],
    )
    .unwrap()
}

/// A random 2-D coupled nest `A[i, i+j] = A[i, j] + 1` over a random
/// rectangle — the distance `(0, i)` varies with the outer index.
fn random_diag_nest(rng: &mut SplitMix64) -> LoopNest {
    let rows = rng.range_i64(3, 8);
    let cols = rng.range_i64(3, 8);
    LoopNest::new(
        "diag2d",
        IterSpace::rect(&[rows, cols]).unwrap(),
        vec![Stmt::assign(
            Access::new("A", vec![Aff::var(2, 0), Aff::new(vec![1, 1], 0)]),
            vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
        )],
    )
    .unwrap()
}

/// Every admitted random nest carries an LC016 certificate that the
/// Presburger core **re-verifies from scratch**: a second independent
/// `certify_cover` pass over the returned fold must refute every escape
/// system again with zero refutations and zero Unknowns.
#[test]
fn certificates_reverify_on_random_nests() {
    let mut rng = SplitMix64::new(0x5eed_0016);
    for case in 0..24 {
        let nest = if case % 3 == 2 {
            random_diag_nest(&mut rng)
        } else {
            let extent = rng.range_i64(6, 17);
            random_scale_nest(&mut rng, extent)
        };
        let mut stats = UniformizeStats::default();
        let (u, diags) = admit_uniformized(&nest, DepOptions::default(), &mut stats)
            .unwrap_or_else(|r| panic!("case {case} ({}): {}", nest.name(), r.render_human()));
        assert!(!u.vectors.is_empty(), "case {case}: empty folded set");
        assert_eq!(stats.refuted, 0, "case {case}");
        assert_eq!(stats.unknown, 0, "case {case}");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("cover certified")
                    || d.message.contains("conflict-free")),
            "case {case}: no certificate in {diags:#?}"
        );
        // Independent re-verification of the same fold.
        let mut again = UniformizeStats::default();
        let rediags = certify_cover(&nest, &u, &mut again)
            .unwrap_or_else(|e| panic!("case {case}: certificate did not re-verify: {e:#?}"));
        assert_eq!(again.refuted, 0, "case {case}");
        assert_eq!(again.unknown, 0, "case {case}");
        assert!(again.proofs >= stats.proofs, "case {case}");
        assert!(!rediags.is_empty(), "case {case}");
    }
}

/// Executing a random variable-distance nest in the order of a
/// hyperplane schedule legal for the **folded** vector set computes
/// bit-identical memory to the sequential source loop — across sizes.
/// This is the semantic soundness of uniformization: the synthesized
/// uniform set over-approximates the true dependences, so any order it
/// admits preserves every real flow.
#[test]
fn folded_schedule_execution_matches_sequential_oracle() {
    let mut rng = SplitMix64::new(0x5eed_0017);
    for case in 0..12 {
        for extent in [4, 7, 11, 16] {
            let nest = if case % 3 == 2 {
                random_diag_nest(&mut rng)
            } else {
                random_scale_nest(&mut rng, extent)
            };
            let mut stats = UniformizeStats::default();
            let (u, _) = admit_uniformized(&nest, DepOptions::default(), &mut stats)
                .unwrap_or_else(|r| panic!("{}: {}", nest.name(), r.render_human()));
            let pi = find_optimal(&u.vectors, nest.space(), SearchConfig::default())
                .unwrap_or_else(|e| panic!("{}: no legal pi: {e:?}", nest.name()));
            assert!(pi.is_legal_for(&u.vectors), "{}", nest.name());
            let sched = Schedule::build(pi, nest.space());
            let points: Vec<Point> = nest.space().points().collect();
            let order = schedule_order(&points, &sched);
            let parallel = execute_in_order(&nest, &points, &order, &u.vectors, &address_hash_init)
                .unwrap_or_else(|e| panic!("{}: bad order {e:?}", nest.name()));
            let serial = sequential(&nest, &address_hash_init);
            assert_eq!(
                equivalent(&parallel, &serial),
                Ok(()),
                "case {case} ({}) diverged at extent {extent}",
                nest.name()
            );
        }
    }
}

/// Rejected-by-design inputs stay rejected **with evidence**: a rank
/// mismatch between the write and read subscripts admits no cover, so
/// admission must fail with an error-bearing report that names the
/// offending access pair — Unknown never silently admits.
#[test]
fn uncoverable_nests_reject_with_evidence() {
    // Write rank 1, read rank 2 on the same array: no distance vector
    // is even well-formed, so folding cannot apply.
    let nest = LoopNest::new(
        "rankmix",
        IterSpace::rect(&[6, 6]).unwrap(),
        vec![Stmt::assign(
            Access::simple("A", 2, &[(0, 0)]),
            vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
        )],
    )
    .unwrap();
    let mut stats = UniformizeStats::default();
    let report = admit_uniformized(&nest, DepOptions::default(), &mut stats)
        .expect_err("rank mismatch must not be admitted");
    assert!(report.has_errors(), "{}", report.render_human());
    let human = report.render_human();
    assert!(human.contains("A"), "{human}");
    assert!(
        human.contains("rank") || human.contains("fold") || human.contains("cover"),
        "no evidence in:\n{human}"
    );
}

/// The three variable-distance samples — all rejected by the seed's
/// uniform front end with LC010 — now run the **full pipeline**, and
/// the resulting schedule reproduces the sequential oracle
/// bit-for-bit. This is the acceptance bar for the engine.
#[test]
fn vardist_samples_run_the_pipeline_and_match_the_oracle() {
    for sample in [
        "nonuniform.loom",
        "vardist_scale.loom",
        "vardist_diag2d.loom",
    ] {
        let nest = read_sample(sample);
        let out = Pipeline::new(nest.clone())
            .run(&PipelineConfig {
                cube_dim: 0,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("{sample}: pipeline rejected: {e}"));
        assert!(!out.deps.is_empty(), "{sample}: empty folded D");
        assert!(out.pi.is_legal_for(&out.deps), "{sample}");
        let sched = Schedule::build(out.pi.clone(), nest.space());
        let points: Vec<Point> = nest.space().points().collect();
        let order = schedule_order(&points, &sched);
        let parallel = execute_in_order(&nest, &points, &order, &out.deps, &address_hash_init)
            .unwrap_or_else(|e| panic!("{sample}: bad order {e:?}"));
        let serial = sequential(&nest, &address_hash_init);
        assert_eq!(equivalent(&parallel, &serial), Ok(()), "{sample} diverged");
    }
}

/// Golden end-to-end pipeline output for the committed
/// variable-distance samples: the folded dependence set, the chosen Π,
/// the partition shape, the simulated makespan on the paper's 1991
/// machine, and the full certification report are all pinned.
/// Regenerate with `GOLDEN_DUMP=1 cargo test -p loom-tests-int --test
/// uniformize`.
#[test]
fn vardist_pipeline_goldens() {
    for sample in [
        "nonuniform.loom",
        "vardist_scale.loom",
        "vardist_diag2d.loom",
    ] {
        let nest = read_sample(sample);
        let out = Pipeline::new(nest.clone())
            .run(&PipelineConfig {
                cube_dim: 0,
                machine: Some(MachineOptions {
                    params: MachineParams::classic_1991(),
                    ..Default::default()
                }),
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("{sample}: pipeline rejected: {e}"));
        let sim = out.sim.as_ref().expect("machine requested");
        let mut stats = UniformizeStats::default();
        let (diags, u) = check_access_dependences_uniformized(&nest, None, &mut stats);
        let u = u.unwrap_or_else(|| panic!("{sample}: not admitted"));
        assert_eq!(u.vectors, out.deps, "{sample}: engine/pipeline D mismatch");
        let report = Report::from_diagnostics(diags);
        let got = format!(
            "sample: {sample}\nfolded D = {:?}\npi = {:?} ({} step(s))\n\
             blocks = {}, arcs = {} total / {} interblock\n\
             makespan = {}, messages = {}\n\n{}",
            out.deps,
            out.pi.coeffs(),
            out.pi.steps(nest.space()),
            out.partitioning.num_blocks(),
            out.comm.total_arcs,
            out.comm.interblock_arcs,
            sim.makespan,
            sim.messages,
            report.render_human(),
        );
        let stem = sample.trim_end_matches(".loom");
        assert_golden(
            &format!("crates/tests-int/golden/uniformize/{stem}.pipeline.txt"),
            &got,
        );
    }
}

/// `explore` ranks mappings for formerly-rejected nests: the seed's
/// explorer refused these inputs outright (LC010 before any candidate
/// was tried); with uniformization it returns a non-empty ranked list
/// whose best candidate carries a legal Π for the folded set.
#[test]
fn explore_ranks_mappings_for_formerly_rejected_nests() {
    for sample in [
        "nonuniform.loom",
        "vardist_scale.loom",
        "vardist_diag2d.loom",
    ] {
        let nest = read_sample(sample);
        let ranked = explore(&nest, &[0], &ExploreConfig::default())
            .unwrap_or_else(|e| panic!("{sample}: explore rejected: {e}"));
        assert!(!ranked.is_empty(), "{sample}: no candidates ranked");
        let best = &ranked[0];
        assert!(best.makespan > 0, "{sample}");
        for pair in ranked.windows(2) {
            assert!(
                pair[0].makespan <= pair[1].makespan,
                "{sample}: ranking out of order"
            );
        }
    }
}
