//! Criterion bench for E6: the full pipeline (analysis → Π → partition →
//! map → simulate) that regenerates Table I's rows, timed end to end per
//! machine size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;
use std::hint::black_box;

fn bench_table1_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_pipeline");
    let m = 48i64;
    let w = loom_workloads::matvec::workload(m);
    for cube_dim in [0usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("matvec48_cube", cube_dim),
            &cube_dim,
            |b, &dim| {
                b.iter(|| {
                    let out = Pipeline::new(w.nest.clone())
                        .run(&PipelineConfig {
                            time_fn: Some(w.pi.clone()),
                            cube_dim: dim,
                            machine: Some(MachineOptions {
                                params: MachineParams::classic_1991(),
                                ..Default::default()
                            }),
                            ..Default::default()
                        })
                        .unwrap();
                    black_box(out.sim.unwrap().makespan)
                })
            },
        );
    }
    group.finish();
}

fn bench_analytic_model(c: &mut Criterion) {
    c.bench_function("table1_analytic_all_rows", |b| {
        b.iter(|| black_box(loom_core::analytic::table1_rows(1024)))
    });
}

criterion_group!(benches, bench_table1_pipeline, bench_analytic_model);
criterion_main!(benches);
