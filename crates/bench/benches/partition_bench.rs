//! Criterion bench: Algorithm 1 (projection + grouping + blocks) across
//! workload sizes — the partitioner is compile-time machinery, so its
//! own cost matters to a parallelizing compiler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_hyperplane::TimeFn;
use loom_partition::{partition, PartitionConfig};
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    for m in [16i64, 32, 64] {
        let w = loom_workloads::matvec::workload(m);
        let deps = w.verified_deps();
        group.bench_with_input(BenchmarkId::new("matvec", m), &m, |b, _| {
            b.iter(|| {
                let p = partition(
                    w.nest.space().clone(),
                    deps.clone(),
                    TimeFn::new(w.pi.clone()),
                    &PartitionConfig::default(),
                )
                .unwrap();
                black_box(p.num_blocks())
            })
        });
    }
    for n in [4i64, 8, 12] {
        let w = loom_workloads::matmul::workload(n);
        let deps = w.verified_deps();
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| {
                let p = partition(
                    w.nest.space().clone(),
                    deps.clone(),
                    TimeFn::new(w.pi.clone()),
                    &PartitionConfig::default(),
                )
                .unwrap();
                black_box(p.num_blocks())
            })
        });
    }
    group.finish();
}

fn bench_dependence_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_extraction");
    for w in loom_workloads::all_default() {
        group.bench_function(w.nest.name().to_string(), |b| {
            b.iter(|| {
                black_box(
                    loom_loopir::deps::dependence_vectors(
                        &w.nest,
                        loom_loopir::DepOptions::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_hyperplane_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperplane_search");
    for w in [
        loom_workloads::l1::workload(16),
        loom_workloads::matmul::workload(8),
    ] {
        group.bench_function(w.nest.name().to_string(), |b| {
            let deps = w.verified_deps();
            b.iter(|| {
                black_box(
                    loom_hyperplane::find_optimal(
                        &deps,
                        w.nest.space(),
                        loom_hyperplane::SearchConfig::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partition,
    bench_dependence_extraction,
    bench_hyperplane_search
);
criterion_main!(benches);
