//! Flattening a pipeline run's observability — recorder spans/counters
//! and the simulator report — into the metrics JSON document that
//! `loom --metrics-out` and the repro binaries write.

use loom_machine::SimReport;
use loom_obs::{Json, Recorder};

/// The recorder's spans and counters as a JSON object.
pub fn recorder_json(recorder: &Recorder) -> Json {
    let spans = Json::Arr(
        recorder
            .spans()
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::from(s.name.as_str())),
                    ("start_us", Json::from(s.start_us)),
                    ("dur_us", Json::from(s.dur_us)),
                ])
            })
            .collect(),
    );
    let counters = Json::Obj(
        recorder
            .counters()
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect(),
    );
    Json::obj(vec![("spans", spans), ("counters", counters)])
}

/// The simulator report — coarse occupancy, derived ratios, and (when
/// collected) the rich [`SimMetrics`](loom_machine::SimMetrics) block —
/// as a JSON object.
pub fn sim_json(sim: &SimReport) -> Json {
    let mut fields = vec![
        ("makespan", Json::from(sim.makespan)),
        (
            "compute",
            Json::Arr(sim.compute.iter().map(|&c| Json::from(c)).collect()),
        ),
        (
            "comm",
            Json::Arr(sim.comm.iter().map(|&c| Json::from(c)).collect()),
        ),
        (
            "idle",
            Json::Arr(sim.idle_ticks().iter().map(|&c| Json::from(c)).collect()),
        ),
        (
            "utilization",
            Json::Arr(
                sim.per_proc_utilization()
                    .iter()
                    .map(|&u| Json::from(u))
                    .collect(),
            ),
        ),
        (
            "comm_to_compute_ratio",
            Json::from(sim.comm_to_compute_ratio()),
        ),
        ("messages", Json::from(sim.messages)),
        ("words", Json::from(sim.words)),
    ];
    if let Some(m) = &sim.metrics {
        fields.push(("telemetry", m.to_json()));
    }
    if let Some(d) = &sim.degradation {
        fields.push(("degradation", d.to_json()));
    }
    Json::obj(fields)
}

/// The full metrics document: a `recorder` section (phase spans and
/// counters) plus a `sim` section when the pipeline simulated.
pub fn metrics_json(recorder: &Recorder, sim: Option<&SimReport>) -> Json {
    let mut fields = vec![("recorder", recorder_json(recorder))];
    if let Some(s) = sim {
        fields.push(("sim", sim_json(s)));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MachineOptions;
    use crate::{Pipeline, PipelineConfig};

    #[test]
    fn full_document_round_trips() {
        let w = loom_workloads::matvec::workload(16);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest.clone())
            .run_with(
                &PipelineConfig {
                    time_fn: Some(w.pi.clone()),
                    cube_dim: 2,
                    machine: Some(MachineOptions {
                        collect_metrics: true,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        let doc = metrics_json(&rec, out.sim.as_ref());
        // Recorder section carries the phase spans.
        let spans = doc
            .get("recorder")
            .unwrap()
            .get("spans")
            .unwrap()
            .as_arr()
            .unwrap();
        assert!(!spans.is_empty());
        // Sim section carries occupancy vectors of machine size.
        let sim = doc.get("sim").unwrap();
        assert_eq!(sim.get("compute").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(sim.get("utilization").unwrap().as_arr().unwrap().len(), 4);
        assert!(sim.get("telemetry").unwrap().get("procs").is_some());
        // The whole document survives a render→parse round trip.
        let rendered = doc.render_pretty();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn degradation_section_appears_under_faults() {
        use loom_machine::{FaultConfig, FaultPlan, RecoveryPolicy};
        let w = loom_workloads::matvec::workload(16);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest.clone())
            .run_with(
                &PipelineConfig {
                    time_fn: Some(w.pi.clone()),
                    cube_dim: 2,
                    machine: Some(MachineOptions {
                        faults: Some(FaultConfig::new(
                            FaultPlan::none().with_crash(2, 40),
                            RecoveryPolicy::Remap,
                        )),
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        let doc = metrics_json(&rec, out.sim.as_ref());
        let deg = doc.get("sim").unwrap().get("degradation").unwrap();
        assert_eq!(deg.get("crashes").unwrap().as_u64(), Some(1));
        assert!(deg.get("makespan_inflation").is_some());
        let rendered = doc.render_pretty();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn no_sim_section_without_simulation() {
        let rec = Recorder::enabled();
        let doc = metrics_json(&rec, None);
        assert!(doc.get("sim").is_none());
        assert!(doc.get("recorder").is_some());
    }
}
