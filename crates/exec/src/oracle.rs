//! The sequential oracle: execute a nest in source (lexicographic)
//! order — by definition, the correct result.

use crate::memory::Memory;
use loom_loopir::LoopNest;

/// Execute one iteration's statement body against `mem`.
pub(crate) fn execute_iteration(
    nest: &LoopNest,
    point: &[i64],
    mem: &mut Memory,
    init: &dyn Fn(&str, &[i64]) -> f64,
) {
    for stmt in nest.stmts() {
        let reads: Vec<f64> = stmt
            .reads()
            .iter()
            .map(|r| mem.read(r.array(), &r.element_at(point), init))
            .collect();
        let value = stmt.semantics().eval(&reads);
        mem.write(stmt.write().array(), stmt.write().element_at(point), value);
    }
}

/// Run the nest sequentially, returning the final store.
pub fn sequential(nest: &LoopNest, init: &dyn Fn(&str, &[i64]) -> f64) -> Memory {
    let mut mem = Memory::new();
    for p in nest.space().points() {
        execute_iteration(nest, &p, &mut mem, init);
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::address_hash_init;
    use loom_loopir::sem::Expr;
    use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

    #[test]
    fn matvec_computes_real_products() {
        // y[i] = Σ_j A[i,j]·x[j] with A and x from the init function.
        let nest = LoopNest::new(
            "matvec",
            IterSpace::rect(&[3, 3]).unwrap(),
            vec![Stmt::assign(
                Access::simple("y", 2, &[(0, 0)]),
                vec![
                    Access::simple("y", 2, &[(0, 0)]),
                    Access::simple("A", 2, &[(0, 0), (1, 0)]),
                    Access::simple("x", 2, &[(1, 0)]),
                ],
            )
            .with_expr(Expr::add(
                Expr::Read(0),
                Expr::mul(Expr::Read(1), Expr::Read(2)),
            ))],
        )
        .unwrap();
        let init = |a: &str, e: &[i64]| match a {
            "y" => 0.0,
            _ => address_hash_init(a, e),
        };
        let mem = sequential(&nest, &init);
        // Check y[1] against a direct computation.
        let expected: f64 = (0..3)
            .map(|j| address_hash_init("A", &[1, j]) * address_hash_init("x", &[j]))
            .sum();
        assert_eq!(mem.get("y", &[1]), Some(expected));
    }

    #[test]
    fn recurrence_order_matters_and_is_sequential() {
        // A[i+1] = A[i] + 1 starting from A[0] = 0 → A[n] = n.
        let nest = LoopNest::new(
            "count",
            IterSpace::rect(&[5]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 1, &[(0, 1)]),
                vec![Access::simple("A", 1, &[(0, 0)])],
            )
            .with_expr(Expr::add(Expr::Read(0), Expr::Const(1.0)))],
        )
        .unwrap();
        let mem = sequential(&nest, &|_, _| 0.0);
        for i in 1..=5 {
            assert_eq!(mem.get("A", &[i]), Some(i as f64));
        }
    }

    #[test]
    fn default_semantics_sum_of_reads() {
        let nest = LoopNest::new(
            "sum",
            IterSpace::rect(&[2]).unwrap(),
            vec![Stmt::assign(
                Access::simple("B", 1, &[(0, 0)]),
                vec![
                    Access::simple("x", 1, &[(0, 0)]),
                    Access::simple("y", 1, &[(0, 0)]),
                ],
            )],
        )
        .unwrap();
        let mem = sequential(&nest, &|a, _| if a == "x" { 2.0 } else { 3.0 });
        assert_eq!(mem.get("B", &[0]), Some(5.0));
    }
}
