//! The diagnostics model: rule ids, severities, spans into the loop IR,
//! and the [`Report`] that collects them with human and JSON renderers.

use loom_obs::Json;
use std::collections::BTreeMap;
use std::fmt;

/// Stable identifiers for every rule the checker knows. The numeric
/// codes (`LC001`…) are part of the tool's output contract: tests
/// snapshot them, CI greps them, and the JSON schema keys counters by
/// them, so codes are never reused or renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `LC001` — schedule legality: `Π·dᵢ ≥ 1` for every dependence.
    ScheduleLegality,
    /// `LC002` — Lemma 1: no two iterations of one block share a step.
    BlockSharedStep,
    /// `LC003` — Theorem 2: group out-degree is at most `2m − β`.
    NeighborBound,
    /// `LC004` — Gray-code mapping: TIG edges map to unit hypercube hops.
    GrayAdjacency,
    /// `LC005` — static data race between concurrently-schedulable
    /// computes of the SPMD program.
    DataRace,
    /// `LC006` — grouping-vector selection: the chosen set must be a
    /// rank-β independent set (the invariant previously guarded only by
    /// a `debug_assert!` in `loom-partition`).
    GroupingRank,
    /// `LC007` — SPMD program consistency: every receive has a matching
    /// send that can reach it (no deadlock, no orphan message).
    UnmatchedMessage,
    /// `LC008` — fault-plan validity: every injected fault references a
    /// live processor or physical link, windows are well-ordered, and
    /// the plan survives a JSON round trip unchanged.
    FaultPlan,
    /// `LC009` — parametric legality and Lemma 1: `Π·d ≥ 1` and
    /// per-block step uniqueness proven as lattice statements that are
    /// independent of the iteration-space bounds wherever possible
    /// (symbolic mode's replacement for `LC001`/`LC002`).
    ParametricLegality,
    /// `LC010` — exact front-end dependence analysis: the dependence
    /// vectors derived from the array subscripts must be uniform and
    /// agree with the declared dependence set `D`.
    AccessDependence,
    /// `LC011` — symbolic communication protocol: the per-block
    /// send/recv summary derived at projection-line granularity must
    /// match the Task Interaction Graph exactly (symbolic mode's
    /// replacement for the `LC007` message-matching fixpoint).
    ProtocolSummary,
    /// `LC012` — blocking-wait cycles: no cycle of inter-block waits
    /// with non-positive total schedule lag (symbolic mode's
    /// deadlock-freedom proof, replacing the enumerative fixpoint).
    BlockingCycle,
    /// `LC013` — deadlock-freedom under *every* interleaving: the
    /// DPOR model checker explores all inequivalent schedules of the
    /// generated SPMD program; a reachable deadlock is reported with
    /// its counterexample trace.
    InterleavingDeadlock,
    /// `LC014` — determinacy: the final memory state is
    /// interleaving-independent, and matches the `loom-exec`
    /// sequential oracle (every explored schedule is replayed and
    /// compared).
    InterleavingDeterminacy,
    /// `LC015` — buffer/block-access bounds: no op of the generated
    /// program can reach an out-of-range point, processor, dependence,
    /// or array element, proven by interval abstract interpretation
    /// (size-parametric via the Presburger core where possible).
    BlockAccessBounds,
    /// `LC016` — uniformization soundness: every point of the true
    /// (variable-distance) dependence relation is covered by a
    /// non-negative integer combination of the synthesized uniform
    /// vectors; the Presburger core refutes every escape (a distance
    /// outside the span, or needing a negative or fractional
    /// coefficient), and `Unsat` on each escape system is the proof.
    UniformizeSoundness,
    /// `LC017` — uniformization tightness: a synthesized vector
    /// over-approximates (its cover admits iteration pairs that never
    /// conflict), reported with the parallelism lost as the change in
    /// legal-Π count / schedule step bound.
    UniformizeTightness,
    /// `LC018` — uniformization legality handoff: the folded nest's
    /// chosen schedule satisfies `Π·v ≥ 1` for every synthesized
    /// vector, so LC001/LC009 legality carries over at all sizes.
    UniformizeLegality,
    /// `LP001` — front end: a character outside the `.loom` alphabet.
    LexInvalidChar,
    /// `LP002` — front end: an integer literal that does not fit `i64`.
    LexIntOverflow,
    /// `LP003` — front end: a syntax error (`expected X, found Y`); the
    /// parser resynchronized and kept going.
    ParseExpected,
    /// `LP004` — front end: a subscript references an identifier that is
    /// not a loop index.
    ParseUnknownIndex,
    /// `LP005` — front end: a non-affine subscript (variable × variable).
    ParseNonAffine,
    /// `LP006` — front end: a malformed `step` clause.
    ParseBadStep,
    /// `LP007` — front end: the recovered pieces do not form a valid
    /// nest (no loops, no statements, invalid bounds).
    ParseInvalidNest,
    /// `LP008` — front end: a resource limit was hit (input size, token
    /// count, expression depth, nest depth, or the diagnostic cap).
    ResourceLimit,
}

impl RuleId {
    /// The stable code, e.g. `"LC001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::ScheduleLegality => "LC001",
            RuleId::BlockSharedStep => "LC002",
            RuleId::NeighborBound => "LC003",
            RuleId::GrayAdjacency => "LC004",
            RuleId::DataRace => "LC005",
            RuleId::GroupingRank => "LC006",
            RuleId::UnmatchedMessage => "LC007",
            RuleId::FaultPlan => "LC008",
            RuleId::ParametricLegality => "LC009",
            RuleId::AccessDependence => "LC010",
            RuleId::ProtocolSummary => "LC011",
            RuleId::BlockingCycle => "LC012",
            RuleId::InterleavingDeadlock => "LC013",
            RuleId::InterleavingDeterminacy => "LC014",
            RuleId::BlockAccessBounds => "LC015",
            RuleId::UniformizeSoundness => "LC016",
            RuleId::UniformizeTightness => "LC017",
            RuleId::UniformizeLegality => "LC018",
            RuleId::LexInvalidChar => "LP001",
            RuleId::LexIntOverflow => "LP002",
            RuleId::ParseExpected => "LP003",
            RuleId::ParseUnknownIndex => "LP004",
            RuleId::ParseNonAffine => "LP005",
            RuleId::ParseBadStep => "LP006",
            RuleId::ParseInvalidNest => "LP007",
            RuleId::ResourceLimit => "LP008",
        }
    }

    /// The short kebab-case name, e.g. `"schedule-legality"`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::ScheduleLegality => "schedule-legality",
            RuleId::BlockSharedStep => "block-shared-step",
            RuleId::NeighborBound => "neighbor-bound",
            RuleId::GrayAdjacency => "gray-adjacency",
            RuleId::DataRace => "data-race",
            RuleId::GroupingRank => "grouping-rank",
            RuleId::UnmatchedMessage => "unmatched-message",
            RuleId::FaultPlan => "fault-plan",
            RuleId::ParametricLegality => "parametric-legality",
            RuleId::AccessDependence => "access-dependence",
            RuleId::ProtocolSummary => "protocol-summary",
            RuleId::BlockingCycle => "blocking-cycle",
            RuleId::InterleavingDeadlock => "interleaving-deadlock",
            RuleId::InterleavingDeterminacy => "interleaving-determinacy",
            RuleId::BlockAccessBounds => "block-access-bounds",
            RuleId::UniformizeSoundness => "uniformize-soundness",
            RuleId::UniformizeTightness => "uniformize-tightness",
            RuleId::UniformizeLegality => "uniformize-legality",
            RuleId::LexInvalidChar => "lex-invalid-char",
            RuleId::LexIntOverflow => "lex-int-overflow",
            RuleId::ParseExpected => "parse-expected",
            RuleId::ParseUnknownIndex => "parse-unknown-index",
            RuleId::ParseNonAffine => "parse-non-affine",
            RuleId::ParseBadStep => "parse-bad-step",
            RuleId::ParseInvalidNest => "parse-invalid-nest",
            RuleId::ResourceLimit => "resource-limit",
        }
    }

    /// Every rule, in code order (`LC0NN` first, then `LP0NN`).
    pub fn all() -> [RuleId; 26] {
        [
            RuleId::ScheduleLegality,
            RuleId::BlockSharedStep,
            RuleId::NeighborBound,
            RuleId::GrayAdjacency,
            RuleId::DataRace,
            RuleId::GroupingRank,
            RuleId::UnmatchedMessage,
            RuleId::FaultPlan,
            RuleId::ParametricLegality,
            RuleId::AccessDependence,
            RuleId::ProtocolSummary,
            RuleId::BlockingCycle,
            RuleId::InterleavingDeadlock,
            RuleId::InterleavingDeterminacy,
            RuleId::BlockAccessBounds,
            RuleId::UniformizeSoundness,
            RuleId::UniformizeTightness,
            RuleId::UniformizeLegality,
            RuleId::LexInvalidChar,
            RuleId::LexIntOverflow,
            RuleId::ParseExpected,
            RuleId::ParseUnknownIndex,
            RuleId::ParseNonAffine,
            RuleId::ParseBadStep,
            RuleId::ParseInvalidNest,
            RuleId::ResourceLimit,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How bad a diagnostic is. `Error` fails the pipeline stage and makes
/// the CLI exit nonzero; `Warning` and `Info` are reported but pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (e.g. a check that could not run here).
    Info,
    /// Suspicious but not a proven correctness violation.
    Warning,
    /// A violated invariant: the transformed program is wrong.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// Where in the loop IR / pipeline artifacts a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Span {
    /// The whole nest (no finer locus applies).
    Nest,
    /// Dependence `index` of the dependence set `D`.
    Dep {
        /// Index into `D`.
        index: usize,
        /// The dependence vector.
        vector: Vec<i64>,
    },
    /// Block `block` of the partitioning.
    Block {
        /// Block id.
        block: usize,
    },
    /// Group `group` of the projected grouping.
    Group {
        /// Group id.
        group: usize,
    },
    /// The TIG edge between blocks `a` and `b`.
    TigEdge {
        /// Smaller endpoint.
        a: usize,
        /// Larger endpoint.
        b: usize,
    },
    /// A pair of iteration points.
    PointPair {
        /// First point.
        a: Vec<i64>,
        /// Second point.
        b: Vec<i64>,
    },
    /// An array element.
    Element {
        /// Array name.
        array: String,
        /// Element indices.
        element: Vec<i64>,
    },
    /// Operation `op` of processor `proc`'s SPMD program.
    ProgramOp {
        /// Processor number.
        proc: u32,
        /// Index into the processor's op list.
        op: usize,
    },
    /// Scheduled fault `index` of a fault plan's event list.
    FaultEvent {
        /// Index into `FaultPlan::events`.
        index: usize,
    },
    /// A pair of array accesses (rendered subscript forms, e.g.
    /// `A[2i]`), the locus of the front-end dependence rules.
    AccessPair {
        /// Array both accesses touch.
        array: String,
        /// Rendered first access.
        a: String,
        /// Rendered second access.
        b: String,
    },
    /// A physical range in the checked source file — the locus of the
    /// front-end (`LP0NN`) rules.
    Source {
        /// 1-based source line.
        line: u32,
        /// 1-based source column (bytes).
        col: u32,
        /// Byte offset where the range starts.
        offset: usize,
        /// Length of the range in bytes (0 marks a point).
        len: usize,
    },
    /// An interleaving counterexample: the schedule prefix that reaches
    /// the violating state, compressed to macro-steps. Each step is
    /// `(proc, first op index, one past the last op index)` — the
    /// processor ran that contiguous slice of its program before the
    /// scheduler switched away.
    Trace {
        /// The macro-step schedule, in execution order.
        steps: Vec<(u32, usize, usize)>,
    },
}

fn ints(v: &[i64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", parts.join(","))
}

fn ints_json(v: &[i64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Int(x)).collect())
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Nest => write!(f, "nest"),
            Span::Dep { index, vector } => write!(f, "dep[{index}]={}", ints(vector)),
            Span::Block { block } => write!(f, "block B{block}"),
            Span::Group { group } => write!(f, "group G{group}"),
            Span::TigEdge { a, b } => write!(f, "tig edge B{a}-B{b}"),
            Span::PointPair { a, b } => write!(f, "points {} and {}", ints(a), ints(b)),
            Span::Element { array, element } => write!(f, "element {array}{}", ints(element)),
            Span::ProgramOp { proc, op } => write!(f, "P{proc} op {op}"),
            Span::FaultEvent { index } => write!(f, "fault event [{index}]"),
            Span::AccessPair { array: _, a, b } => write!(f, "accesses {a} and {b}"),
            Span::Source { line, col, .. } => write!(f, "{line}:{col}"),
            Span::Trace { steps } => {
                // Long traces are elided in the middle: the first and
                // last steps carry the story, the cap keeps one
                // diagnostic line readable.
                const SHOWN: usize = 12;
                write!(f, "trace")?;
                let render = |f: &mut fmt::Formatter<'_>, s: &(u32, usize, usize)| {
                    write!(f, " P{}:{}..{}", s.0, s.1, s.2)
                };
                if steps.len() <= SHOWN {
                    for s in steps {
                        render(f, s)?;
                    }
                } else {
                    for s in &steps[..SHOWN - 2] {
                        render(f, s)?;
                    }
                    write!(f, " …[{} more]", steps.len() - SHOWN)?;
                    for s in &steps[steps.len() - 2..] {
                        render(f, s)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl Span {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        match self {
            Span::Nest => Json::obj(vec![("kind", Json::from("nest"))]),
            Span::Dep { index, vector } => Json::obj(vec![
                ("kind", Json::from("dep")),
                ("index", Json::from(*index)),
                ("vector", ints_json(vector)),
            ]),
            Span::Block { block } => Json::obj(vec![
                ("kind", Json::from("block")),
                ("block", Json::from(*block)),
            ]),
            Span::Group { group } => Json::obj(vec![
                ("kind", Json::from("group")),
                ("group", Json::from(*group)),
            ]),
            Span::TigEdge { a, b } => Json::obj(vec![
                ("kind", Json::from("tig_edge")),
                ("a", Json::from(*a)),
                ("b", Json::from(*b)),
            ]),
            Span::PointPair { a, b } => Json::obj(vec![
                ("kind", Json::from("point_pair")),
                ("a", ints_json(a)),
                ("b", ints_json(b)),
            ]),
            Span::Element { array, element } => Json::obj(vec![
                ("kind", Json::from("element")),
                ("array", Json::from(array.as_str())),
                ("element", ints_json(element)),
            ]),
            Span::ProgramOp { proc, op } => Json::obj(vec![
                ("kind", Json::from("program_op")),
                ("proc", Json::from(*proc as u64)),
                ("op", Json::from(*op)),
            ]),
            Span::FaultEvent { index } => Json::obj(vec![
                ("kind", Json::from("fault_event")),
                ("index", Json::from(*index)),
            ]),
            Span::AccessPair { array, a, b } => Json::obj(vec![
                ("kind", Json::from("access_pair")),
                ("array", Json::from(array.as_str())),
                ("a", Json::from(a.as_str())),
                ("b", Json::from(b.as_str())),
            ]),
            Span::Source {
                line,
                col,
                offset,
                len,
            } => Json::obj(vec![
                ("kind", Json::from("source")),
                ("line", Json::from(*line as u64)),
                ("col", Json::from(*col as u64)),
                ("offset", Json::from(*offset)),
                ("len", Json::from(*len)),
            ]),
            Span::Trace { steps } => Json::obj(vec![
                ("kind", Json::from("trace")),
                (
                    "steps",
                    Json::Arr(
                        steps
                            .iter()
                            .map(|&(p, lo, hi)| {
                                Json::Arr(vec![
                                    Json::from(p as u64),
                                    Json::from(lo),
                                    Json::from(hi),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// One finding: a violated (or suspicious) invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// The human explanation.
    pub message: String,
}

impl Diagnostic {
    /// An `Error`-severity diagnostic.
    pub fn error(rule: RuleId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// A `Warning`-severity diagnostic.
    pub fn warning(rule: RuleId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// An `Info`-severity diagnostic.
    pub fn info(rule: RuleId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Info,
            span,
            message: message.into(),
        }
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rule", Json::from(self.rule.code())),
            ("name", Json::from(self.rule.name())),
            ("severity", Json::from(self.severity.to_string())),
            ("span", self.span.to_json()),
            ("message", Json::from(self.message.as_str())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        )
    }
}

/// Every diagnostic a checking run produced, in rule-execution order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// A report holding the given diagnostics.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }

    /// Append one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append many diagnostics.
    pub fn extend(&mut self, ds: Vec<Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// All diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` iff the report holds no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` iff any diagnostic is an `Error`.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Diagnostics per rule code (only rules that fired).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.rule.code()).or_insert(0) += 1;
        }
        counts
    }

    /// Downgrade every `Error` of the listed rule codes to `Warning`
    /// (the CLI's `--allow LC004,LC005` suppression mechanism).
    pub fn allow(&mut self, codes: &[String]) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Error && codes.iter().any(|c| c == d.rule.code()) {
                d.severity = Severity::Warning;
            }
        }
    }

    /// The human rendering: one line per diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "check: {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// The SARIF 2.1.0 rendering (the subset GitHub code scanning
    /// ingests): one run, one `loom-check` driver listing every rule,
    /// one result per diagnostic. Severities map to SARIF levels as
    /// `Error` → `error`, `Warning` → `warning`, `Info` → `note`. When
    /// `artifact` names the checked source file, each result carries a
    /// physical location pointing at it — [`Span::Source`] diagnostics
    /// (the front-end `LP0NN` rules) supply their real line/column,
    /// everything else defaults to line 1 since those diagnostics
    /// address derived structures, not source ranges; the precise locus
    /// is always present as a logical location holding the span's human
    /// rendering.
    pub fn to_sarif(&self, artifact: Option<&str>) -> Json {
        let rules: Vec<Json> = RuleId::all()
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("id", Json::from(r.code())),
                    ("name", Json::from(r.name())),
                    (
                        "shortDescription",
                        Json::obj(vec![("text", Json::from(r.name()))]),
                    ),
                ])
            })
            .collect();
        let results: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                let level = match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                    Severity::Info => "note",
                };
                let rule_index = RuleId::all().iter().position(|r| *r == d.rule).unwrap_or(0);
                let mut location = vec![(
                    "logicalLocations",
                    Json::Arr(vec![Json::obj(vec![(
                        "fullyQualifiedName",
                        Json::from(d.span.to_string()),
                    )])]),
                )];
                if let Some(uri) = artifact {
                    let (line, col) = match d.span {
                        Span::Source { line, col, .. } => (line as u64, col as u64),
                        _ => (1, 1),
                    };
                    location.push((
                        "physicalLocation",
                        Json::obj(vec![
                            (
                                "artifactLocation",
                                Json::obj(vec![("uri", Json::from(uri))]),
                            ),
                            (
                                "region",
                                Json::obj(vec![
                                    ("startLine", Json::from(line)),
                                    ("startColumn", Json::from(col)),
                                ]),
                            ),
                        ]),
                    ));
                }
                Json::obj(vec![
                    ("ruleId", Json::from(d.rule.code())),
                    ("ruleIndex", Json::from(rule_index)),
                    ("level", Json::from(level)),
                    (
                        "message",
                        Json::obj(vec![(
                            "text",
                            Json::from(format!("{}: {}", d.span, d.message)),
                        )]),
                    ),
                    ("locations", Json::Arr(vec![Json::obj(location)])),
                ])
            })
            .collect();
        let driver = Json::obj(vec![
            ("name", Json::from("loom-check")),
            ("version", Json::from(env!("CARGO_PKG_VERSION"))),
            (
                "informationUri",
                Json::from("https://example.invalid/loom/docs/CHECKS.md"),
            ),
            ("rules", Json::Arr(rules)),
        ]);
        Json::obj(vec![
            (
                "$schema",
                Json::from(
                    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
                ),
            ),
            ("version", Json::from("2.1.0")),
            (
                "runs",
                Json::Arr(vec![Json::obj(vec![
                    ("tool", Json::obj(vec![("driver", driver)])),
                    ("results", Json::Arr(results)),
                ])]),
            ),
        ])
    }

    /// The machine rendering: diagnostics, per-rule counts, and totals.
    pub fn to_json(&self) -> Json {
        let counts = self
            .rule_counts()
            .into_iter()
            .map(|(code, n)| (code.to_string(), Json::from(n)))
            .collect();
        Json::obj(vec![
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            ("counts", Json::Obj(counts)),
            ("errors", Json::from(self.count(Severity::Error))),
            ("warnings", Json::from(self.count(Severity::Warning))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes: Vec<&str> = RuleId::all().iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            vec![
                "LC001", "LC002", "LC003", "LC004", "LC005", "LC006", "LC007", "LC008", "LC009",
                "LC010", "LC011", "LC012", "LC013", "LC014", "LC015", "LC016", "LC017", "LC018",
                "LP001", "LP002", "LP003", "LP004", "LP005", "LP006", "LP007", "LP008"
            ]
        );
        let mut names: Vec<&str> = RuleId::all().iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RuleId::all().len());
    }

    #[test]
    fn source_span_renders_position_and_sarif_region() {
        let d = Diagnostic::error(
            RuleId::ParseUnknownIndex,
            Span::Source {
                line: 2,
                col: 4,
                offset: 17,
                len: 1,
            },
            "unknown loop index `q`",
        );
        assert_eq!(d.to_string(), "error[LP004] 2:4: unknown loop index `q`");
        let r = Report::from_diagnostics(vec![d]);
        let sarif = r.to_sarif(Some("bad.loom")).render_pretty();
        let parsed = Json::parse(&sarif).expect("valid JSON");
        let region = parsed
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("results"))
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("locations"))
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|l| l.get("region"))
            .unwrap();
        assert_eq!(region.get("startLine"), Some(&Json::from(2u64)));
        assert_eq!(region.get("startColumn"), Some(&Json::from(4u64)));
        let json = r.to_json().render();
        assert!(json.contains("\"offset\""), "{json}");
    }

    #[test]
    fn trace_span_renders_and_elides() {
        let short = Span::Trace {
            steps: vec![(0, 0, 3), (1, 0, 2), (0, 3, 5)],
        };
        assert_eq!(short.to_string(), "trace P0:0..3 P1:0..2 P0:3..5");
        let long = Span::Trace {
            steps: (0..20)
                .map(|i| (i % 2, i as usize, i as usize + 1))
                .collect(),
        };
        let rendered = long.to_string();
        assert!(rendered.contains("…[8 more]"), "{rendered}");
        assert!(rendered.ends_with("P0:18..19 P1:19..20"), "{rendered}");
        let json = short.to_json().render();
        assert!(json.contains("\"trace\""), "{json}");
        assert!(json.contains("[1,0,2]"), "{json}");
    }

    #[test]
    fn sarif_structure_and_levels() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            RuleId::AccessDependence,
            Span::AccessPair {
                array: "A".into(),
                a: "A[2i]".into(),
                b: "A[i]".into(),
            },
            "non-uniform",
        ));
        r.push(Diagnostic::info(RuleId::DataRace, Span::Nest, "skipped"));
        let doc = r.to_sarif(Some("samples/nonuniform.loom"));
        let parsed = Json::parse(&doc.render_pretty()).expect("valid JSON");
        assert_eq!(parsed.get("version"), Some(&Json::from("2.1.0")));
        let run = parsed.get("runs").and_then(|r| r.idx(0)).unwrap();
        let results = run.get("results").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId"), Some(&Json::from("LC010")));
        assert_eq!(results[0].get("level"), Some(&Json::from("error")));
        assert_eq!(results[1].get("level"), Some(&Json::from("note")));
        let loc = results[0]
            .get("locations")
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|l| l.get("artifactLocation"))
            .and_then(|l| l.get("uri"));
        assert_eq!(loc, Some(&Json::from("samples/nonuniform.loom")));
        // Every known rule is declared in the driver.
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|r| r.as_arr())
            .unwrap();
        assert_eq!(rules.len(), RuleId::all().len());
        // Without an artifact there is no physical location.
        let bare = r.to_sarif(None);
        assert!(!bare.render().contains("physicalLocation"));
    }

    #[test]
    fn report_counts_and_errors() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::error(
            RuleId::ScheduleLegality,
            Span::Nest,
            "bad",
        ));
        r.push(Diagnostic::warning(
            RuleId::GrayAdjacency,
            Span::TigEdge { a: 0, b: 1 },
            "far",
        ));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.rule_counts()["LC001"], 1);
        assert_eq!(r.rule_counts()["LC004"], 1);
    }

    #[test]
    fn allow_downgrades_errors() {
        let mut r = Report::from_diagnostics(vec![Diagnostic::error(
            RuleId::GrayAdjacency,
            Span::TigEdge { a: 0, b: 1 },
            "far",
        )]);
        r.allow(&["LC004".to_string()]);
        assert!(!r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn human_line_format() {
        let d = Diagnostic::error(
            RuleId::ScheduleLegality,
            Span::Dep {
                index: 2,
                vector: vec![1, 0],
            },
            "\u{3a0}\u{b7}d = -1 < 1",
        );
        assert_eq!(
            d.to_string(),
            "error[LC001] dep[2]=(1,0): \u{3a0}\u{b7}d = -1 < 1"
        );
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut r = Report::new();
        r.push(Diagnostic::info(
            RuleId::DataRace,
            Span::Element {
                array: "A".into(),
                element: vec![1, 2],
            },
            "skipped",
        ));
        let rendered = r.to_json().render_pretty();
        let parsed = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(
            parsed
                .get("diagnostics")
                .and_then(|d| d.idx(0))
                .and_then(|d| d.get("rule")),
            Some(&Json::from("LC005"))
        );
    }
}
