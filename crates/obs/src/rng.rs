//! A deterministic pseudo-random generator (SplitMix64).
//!
//! Replaces the `rand` crate for everything the workspace needs
//! randomness for — seeded baseline mappings and property-style tests —
//! with a generator whose entire state is one `u64`, so results are
//! reproducible across platforms and releases by construction.

/// Steele, Lea & Flood's SplitMix64: one 64-bit state, full period,
/// passes BigCrush. Not cryptographic (nothing here needs to be).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`. Uses rejection sampling,
    /// so the distribution is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Rejection zone keeps u64::MAX+1 ≡ 0 (mod n) leftovers out.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform in the half-open range `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let width = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(width) as i64)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, from the published SplitMix64
        // reference implementation.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_i64_inclusive_exclusive() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..200 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut xs: Vec<u32> = (0..16).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>());
        assert_ne!(
            xs,
            (0..16).collect::<Vec<u32>>(),
            "16 elements virtually never fixed"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
