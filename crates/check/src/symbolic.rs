//! Rules `LC009`–`LC012` — the symbolic analysis engine.
//!
//! The enumerative rules (`LC001`–`LC007`) certify one instantiated
//! iteration space: Lemma 1 walks every block point, and the race scan
//! walks every message of the generated program, so a pass at `N = 64`
//! proves nothing about `N = 65` and check time grows with the
//! instance. The paper's statements are *parametric*, and this module
//! proves them that way wherever the lattice structure allows:
//!
//! * **`LC009` parametric legality and Lemma 1.** `Π·d ≥ 1` over a
//!   uniform dependence set is already a bound-free statement (checked
//!   in `i128`). For Lemma 1, two iterations of one block can share a
//!   step only if they lie on two grouped projection lines `u, v` whose
//!   difference `u − v` is an *integer* vector: colliding points `x, y`
//!   with `Π·x = Π·y` satisfy `x − y = u − v` exactly. A non-integral
//!   projected difference therefore proves the pair collision-free for
//!   **every** iteration-space size — no bounds ever enter the
//!   argument. Integral differences are decided by the bounded
//!   Presburger core ([`crate::presburger`]) over the instance's affine
//!   bounds plus the line-membership lattice equalities; only an
//!   `Unknown` verdict falls back to enumerating that single line pair.
//! * **`LC010` exact front-end dependence analysis.** Derives the
//!   dependences from the subscripts themselves. Pairs in the uniform
//!   class reuse the front end; the derived vector set must match the
//!   declared `D` (a missed dependence is an error — synchronization
//!   for it would never be generated). Pairs with differing linear
//!   parts get the exact coupled test `U_x·i − U_y·j = a_y − a_x` over
//!   the integer lattice: no solution means the accesses can *never*
//!   conflict (and the pair is accepted — more precise than the
//!   front end's blanket rejection would suggest); a solution family
//!   with varying distance is reported as a non-uniform dependence with
//!   two concrete conflicting iteration pairs as evidence.
//! * **`LC011` symbolic protocol summary.** Members of a projection
//!   line inside the (convex) affine iteration space form a contiguous
//!   run of the line's 1-D lattice, so each line's execution steps are
//!   an arithmetic progression described by `(first, length)` and the
//!   shared stride `|Π|²/gcd(Π)`. Message counts between blocks are
//!   derived per `(line, dependence)` pair in O(1) from AP overlaps —
//!   O(lines·deps) total, independent of the extent along Π — and must
//!   match the Task Interaction Graph edge for edge. The send/recv sets
//!   are two views of the same summary, so matching the TIG also
//!   certifies that every send has a matching receive.
//! * **`LC012` blocking-wait cycles.** Every message crosses `Π·d`
//!   schedule steps. A cycle of inter-block waits can stall forever
//!   only if its total lag is ≤ 0 (each wait points at a producer no
//!   later than the consumer); with program order `(step, lex)` inside
//!   each processor, positive total lag on every cycle yields
//!   deadlock-freedom by induction on steps. The rule searches the
//!   derived block graph for a non-positive-lag cycle (Bellman–Ford).
//!
//! The enumerative rules stay available as the cross-validation oracle;
//! the property harness in `tests-int` asserts both sides agree.

use crate::diag::{Diagnostic, RuleId, Span};
use crate::legality::check_legality;
use crate::presburger::{System, Verdict};
use crate::uniformize::UniformizeStats;
use loom_hyperplane::TimeFn;
use loom_loopir::{
    accesses_by_array, Access, DepOptions, Dependence, IterSpace, LoopNest, Point, Uniformization,
};
use loom_partition::{Partitioning, Tig};
use loom_rational::int::gcd_all;
use loom_rational::intlinalg::{try_solve_integer, IMat};
use loom_rational::{QVec, Ratio};
use std::collections::BTreeMap;

/// How the symbolic run discharged its proof obligations — surfaced as
/// `check.symbolic.*` observability counters by the pipeline gate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymbolicStats {
    /// Line pairs proven collision-free for *all* iteration-space sizes
    /// by the lattice argument alone (non-integral projected
    /// difference).
    pub lattice_proofs: u64,
    /// Line pairs decided (either way) by the bounded Presburger core.
    pub fm_decided: u64,
    /// Line pairs the symbolic core reported `Unknown` on, decided by
    /// the enumerative fallback instead.
    pub enumerated: u64,
    /// `(line, dependence)` communication summaries derived in O(1)
    /// from arithmetic-progression overlap.
    pub protocol_summaries: u64,
    /// Lines whose step set was not a single arithmetic progression
    /// (never for affine bounds; counted defensively) and fell back to
    /// explicit step-list intersection.
    pub protocol_fallbacks: u64,
}

fn fmt_vec(v: &[i64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", parts.join(","))
}

// ---------------------------------------------------------------------------
// LC009 — parametric legality + symbolic Lemma 1
// ---------------------------------------------------------------------------

/// `Π·d ≥ 1` for every dependence, reported under `LC009`.
///
/// Over a uniform dependence set this statement never mentions the
/// bounds, so the enumerative arithmetic *is* the parametric proof; the
/// rule id records that symbolic mode discharged it.
pub fn check_legality_symbolic(pi: &TimeFn, deps: &[Point]) -> Vec<Diagnostic> {
    check_legality(pi, deps)
        .into_iter()
        .map(|mut d| {
            d.rule = RuleId::ParametricLegality;
            d
        })
        .collect()
}

/// Symbolic Lemma 1 over the partitioning's own grouping.
pub fn check_lemma1_symbolic(p: &Partitioning, stats: &mut SymbolicStats) -> Vec<Diagnostic> {
    let groups: Vec<Vec<usize>> = p
        .grouping()
        .groups
        .iter()
        .map(|g| g.members.clone())
        .collect();
    check_lemma1_symbolic_groups(p, &groups, stats)
}

/// Symbolic Lemma 1 over explicit groups of projection-line ids
/// (indices into `p.projected().points()`) — lets tests hand in
/// deliberately merged groups, mirroring [`crate::check_lemma1`].
///
/// Points on a *single* line never collide (`x − y = λΠ` implies
/// `Π·(x − y) = λ|Π|² ≠ 0`), so only cross-line pairs are examined.
pub fn check_lemma1_symbolic_groups(
    p: &Partitioning,
    groups: &[Vec<usize>],
    stats: &mut SymbolicStats,
) -> Vec<Diagnostic> {
    let qp = p.projected();
    let cs = p.structure();
    let space = cs.space();
    let pi = p.time_fn();
    let piq = pi.as_qvec();
    let mut out = Vec::new();

    for (gid, members) in groups.iter().enumerate() {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let delta_q = &qp.points()[a] - &qp.points()[b];
                if !delta_q.is_integral() {
                    // Colliding points of lines a and b would differ by
                    // exactly this vector; it is not integral, so no
                    // integer points collide for ANY bounds.
                    stats.lattice_proofs += 1;
                    continue;
                }
                let delta = delta_q.to_ints().expect("integral checked");
                match collision_system(space, pi, &qp.points()[a], &delta).map(|s| s.solve()) {
                    Some(Verdict::Unsat) => stats.fm_decided += 1,
                    Some(Verdict::Sat(x)) => {
                        stats.fm_decided += 1;
                        let y: Point = x.iter().zip(&delta).map(|(&xi, &di)| xi - di).collect();
                        let t = QVec::from_ints(&x).dot(&piq);
                        out.push(shared_step(gid, x, y, t));
                    }
                    Some(Verdict::Unknown) | None => {
                        stats.enumerated += 1;
                        out.extend(enumerate_line_pair(p, gid, a, b));
                    }
                }
            }
        }
    }
    out
}

fn shared_step(gid: usize, a: Point, b: Point, t: Ratio) -> Diagnostic {
    Diagnostic::error(
        RuleId::ParametricLegality,
        Span::PointPair { a, b },
        format!(
            "both iterations of block B{gid} execute at step {t}; \
             Lemma 1 requires distinct steps within a block"
        ),
    )
}

/// The integer system "some `x` on line `u` collides with `x − δ`":
/// affine space bounds for both points plus the scaled line-membership
/// equalities `|Π|²·x_j − π_j·(Π·x) = |Π|²·u_j`. Returns `None` when
/// the constraint coefficients overflow `i64` (callers enumerate).
fn collision_system(space: &IterSpace, pi: &TimeFn, u: &QVec, delta: &[i64]) -> Option<System> {
    let n = space.dim();
    let picf = pi.coeffs();
    let pi_sq: i64 = {
        let mut acc: i128 = 0;
        for &c in picf {
            acc = acc.checked_add((c as i128).checked_mul(c as i128)?)?;
        }
        i64::try_from(acc).ok()?
    };
    let mut sys = System::new(n);

    // dot(coeffs, delta) in checked arithmetic.
    let dot_delta = |coeffs: &[i64]| -> Option<i64> {
        let mut acc: i128 = 0;
        for (&c, &d) in coeffs.iter().zip(delta) {
            acc = acc.checked_add((c as i128).checked_mul(d as i128)?)?;
        }
        i64::try_from(acc).ok()
    };

    for k in 0..n {
        let lo = space.lower(k);
        let hi = space.upper(k);
        let mut lo_c: Vec<i64> = lo.coeffs().iter().map(|&c| -c).collect();
        lo_c[k] = lo_c[k].checked_add(1)?;
        let mut hi_c: Vec<i64> = hi.coeffs().to_vec();
        hi_c[k] = hi_c[k].checked_sub(1)?;
        // x_k − lo_k(x) ≥ 0   and   hi_k(x) − x_k ≥ 0.
        sys.ge0(&lo_c, lo.constant_term().checked_neg()?);
        sys.ge0(&hi_c, hi.constant_term());
        // The same bounds for y = x − δ, rewritten over x.
        let lo_konst = lo
            .constant_term()
            .checked_neg()?
            .checked_sub(delta[k])?
            .checked_add(dot_delta(lo.coeffs())?)?;
        sys.ge0(&lo_c, lo_konst);
        let hi_konst = hi
            .constant_term()
            .checked_add(delta[k])?
            .checked_sub(dot_delta(hi.coeffs())?)?;
        sys.ge0(&hi_c, hi_konst);
    }

    // Line membership: |Π|²·x_j − π_j·(Π·x) = |Π|²·u_j for every j.
    for j in 0..n {
        let key = (u[j] * Ratio::int(pi_sq)).to_integer()?;
        let mut coeffs = vec![0i64; n];
        for k in 0..n {
            let cross = picf[j].checked_mul(picf[k])?;
            let base = if k == j { pi_sq } else { 0 };
            coeffs[k] = base.checked_sub(cross)?;
        }
        sys.eq0(&coeffs, key.checked_neg()?);
    }
    Some(sys)
}

/// Enumerative fallback for one line pair: exact rational step
/// comparison over just the two lines' members.
fn enumerate_line_pair(p: &Partitioning, gid: usize, a: usize, b: usize) -> Vec<Diagnostic> {
    let qp = p.projected();
    let cs = p.structure();
    let piq = p.time_fn().as_qvec();
    let mut out = Vec::new();
    let steps_a: BTreeMap<Ratio, usize> = qp
        .line_members(a)
        .iter()
        .map(|&id| (QVec::from_ints(&cs.points()[id]).dot(&piq), id))
        .collect();
    for &id in qp.line_members(b) {
        let t = QVec::from_ints(&cs.points()[id]).dot(&piq);
        if let Some(&first) = steps_a.get(&t) {
            out.push(shared_step(
                gid,
                cs.points()[first].clone(),
                cs.points()[id].clone(),
                t,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// LC010 — exact front-end dependence analysis
// ---------------------------------------------------------------------------

/// Derive the dependences a nest's array subscripts actually induce and
/// check them against the declared set `D` (when given).
///
/// Nests inside the uniform class reuse the front end and are compared
/// vector-for-vector against `declared`. Nests the front end rejects as
/// non-uniform get the exact pairwise treatment: the coupled system
/// `U_x·i − U_y·j = a_y − a_x` over `ℤ²ⁿ` either has no solution (the
/// accesses never conflict — accepted) or yields concrete evidence of a
/// varying dependence distance.
pub fn check_access_dependences(nest: &LoopNest, declared: Option<&[Point]>) -> Vec<Diagnostic> {
    check_access_dependences_uniformized(nest, declared, &mut UniformizeStats::default()).0
}

/// [`check_access_dependences`] with the uniformization engine
/// surfaced: when the front end rejects the nest as non-uniform, the
/// fold-and-certify path (`LC016`/`LC017`) runs first; on success the
/// nest is admitted and the certified [`Uniformization`] is returned
/// (with `declared` compared against the *folded* dependence set), on
/// failure the rejection falls back to the budgeted pairwise scan.
pub fn check_access_dependences_uniformized(
    nest: &LoopNest,
    declared: Option<&[Point]>,
    stats: &mut UniformizeStats,
) -> (Vec<Diagnostic>, Option<Uniformization>) {
    let opts = DepOptions::default();
    match loom_loopir::extract_dependences(nest, opts) {
        Ok(deps) => {
            let Some(declared) = declared else {
                return (Vec::new(), None);
            };
            (compare_vector_sets(&deps, declared), None)
        }
        Err(loom_loopir::Error::NonUniform { .. }) => {
            crate::uniformize::nonuniform_analysis(nest, declared, stats)
        }
        Err(e) => (
            vec![Diagnostic::warning(
                RuleId::AccessDependence,
                Span::Nest,
                format!("dependence extraction failed ({e}); cannot verify the declared set D"),
            )],
            None,
        ),
    }
}

/// Compare the dependence records a nest's accesses induce against the
/// declared vector set `D`: missing vectors are errors (a needed
/// synchronization would not be generated), dead declared vectors are
/// warnings. Shared between the uniform path and the uniformized path
/// (where `deps` is the folded set).
pub(crate) fn compare_vector_sets(deps: &[Dependence], declared: &[Point]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let derived: Vec<Point> = {
        use std::collections::BTreeSet;
        let set: BTreeSet<Point> = deps
            .iter()
            .map(|d| d.vector.clone())
            .filter(|v| v.iter().any(|&x| x != 0))
            .collect();
        set.into_iter().collect()
    };
    for v in &derived {
        if !declared.contains(v) {
            let who = deps
                .iter()
                .find(|d| &d.vector == v)
                .expect("derived vector has a witness dependence");
            out.push(Diagnostic::error(
                RuleId::AccessDependence,
                Span::Nest,
                format!(
                    "the {} dependence {} on `{}` induced by the array accesses \
                     is missing from the declared set D; no synchronization \
                     would be generated for it",
                    who.kind,
                    fmt_vec(v),
                    who.array
                ),
            ));
        }
    }
    for (index, v) in declared.iter().enumerate() {
        if !derived.contains(v) {
            out.push(Diagnostic::warning(
                RuleId::AccessDependence,
                Span::Dep {
                    index,
                    vector: v.clone(),
                },
                "declared dependence is not induced by any access pair \
                 (dead synchronization: harmless but wasteful)"
                    .to_string(),
            ));
        }
    }
    out
}

fn access_pair_span(array: &str, a: &Access, b: &Access) -> Span {
    Span::AccessPair {
        array: array.to_string(),
        a: a.to_string(),
        b: b.to_string(),
    }
}

/// Evidence cap for [`scan_nonuniform_pairs`]: at most this many
/// diagnostics are produced before the remaining candidate pairs are
/// elided with a note, bounding the scan on access-heavy nests.
const EVIDENCE_BUDGET: usize = 8;

/// The exact pairwise scan for nests the uniform front end rejects.
/// Evidence is capped at [`EVIDENCE_BUDGET`] diagnostics; remaining
/// candidate pairs are counted and elided without solving.
pub(crate) fn scan_nonuniform_pairs(nest: &LoopNest) -> Vec<Diagnostic> {
    let n = nest.dim();
    let mut out = Vec::new();
    let mut elided = 0usize;
    for (array, accs) in accesses_by_array(nest) {
        for (x, &(_, ax, wx)) in accs.iter().enumerate() {
            for &(_, ay, wy) in accs.iter().skip(x) {
                if !(wx || wy) || ax.same_linear_part(ay) || ax.rank() == 0 || ay.rank() == 0 {
                    continue;
                }
                if out.len() >= EVIDENCE_BUDGET {
                    elided += 1;
                    continue;
                }
                if ax.rank() != ay.rank() {
                    out.push(Diagnostic::error(
                        RuleId::AccessDependence,
                        access_pair_span(&array, ax, ay),
                        format!(
                            "accesses address `{array}` with different ranks \
                             ({} vs {}); the dependence structure is undefined",
                            ax.rank(),
                            ay.rank()
                        ),
                    ));
                    continue;
                }
                // U_x·i − U_y·j = a_y − a_x over (i, j) ∈ ℤ²ⁿ.
                let rows: Vec<Vec<i64>> = ax
                    .subscripts()
                    .iter()
                    .zip(ay.subscripts())
                    .map(|(sx, sy)| {
                        sx.coeffs()
                            .iter()
                            .copied()
                            .chain(sy.coeffs().iter().map(|&c| -c))
                            .collect()
                    })
                    .collect();
                let rhs: Vec<i64> = ax
                    .subscripts()
                    .iter()
                    .zip(ay.subscripts())
                    .map(|(sx, sy)| sy.constant_term() - sx.constant_term())
                    .collect();
                let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
                let coupled = IMat::from_rows(&refs);
                match try_solve_integer(&coupled, &rhs) {
                    Err(_) => out.push(Diagnostic::warning(
                        RuleId::AccessDependence,
                        access_pair_span(&array, ax, ay),
                        "overflow while solving the conflict system; cannot \
                         classify this access pair"
                            .to_string(),
                    )),
                    Ok(None) => {
                        // The subscript equations have no integer solution:
                        // these accesses never touch a common element, for
                        // any iteration-space size. Exactness accepts what
                        // the front end would have rejected.
                    }
                    Ok(Some((s0, gens))) => {
                        let (i0, j0) = (&s0[..n], &s0[n..]);
                        let d0: Point = j0.iter().zip(i0).map(|(&j, &i)| j - i).collect();
                        let varying = gens
                            .iter()
                            .find(|g| g[..n].iter().zip(&g[n..]).any(|(&gi, &gj)| gi != gj));
                        match varying {
                            None => out.push(Diagnostic::error(
                                RuleId::AccessDependence,
                                access_pair_span(&array, ax, ay),
                                format!(
                                    "iterations conflict on `{array}` at the constant \
                                     distance {}, but the subscript linear parts differ; \
                                     outside the uniform class the front end supports",
                                    fmt_vec(&d0)
                                ),
                            )),
                            Some(g) => {
                                let i1: Point =
                                    i0.iter().zip(&g[..n]).map(|(&i, &gi)| i + gi).collect();
                                let j1: Point =
                                    j0.iter().zip(&g[n..]).map(|(&j, &gj)| j + gj).collect();
                                let d1: Point = j1.iter().zip(&i1).map(|(&j, &i)| j - i).collect();
                                out.push(Diagnostic::error(
                                    RuleId::AccessDependence,
                                    access_pair_span(&array, ax, ay),
                                    format!(
                                        "conflicting iteration pairs {}\u{2192}{} (distance {}) \
                                         and {}\u{2192}{} (distance {}): the dependence \
                                         distance varies with the iteration, so no constant \
                                         dependence vector covers this pair (non-uniform)",
                                        fmt_vec(i0),
                                        fmt_vec(j0),
                                        fmt_vec(&d0),
                                        fmt_vec(&i1),
                                        fmt_vec(&j1),
                                        fmt_vec(&d1),
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    if out.is_empty() {
        // The front end said NonUniform but every pair proved either
        // conflict-free or uniform: still report, since the pipeline
        // cannot process the nest, but explain the finer verdict.
        out.push(Diagnostic::error(
            RuleId::AccessDependence,
            Span::Nest,
            "the front end rejected the nest as non-uniform".to_string(),
        ));
    }
    if elided > 0 {
        out.push(Diagnostic::info(
            RuleId::AccessDependence,
            Span::Nest,
            format!(
                "{elided} further non-uniform access pair(s) elided \
                 (evidence budget of {EVIDENCE_BUDGET} diagnostics reached)"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// LC011 / LC012 — symbolic communication-protocol verification
// ---------------------------------------------------------------------------

/// One projection line's execution steps.
enum LineSteps {
    /// `first, first + stride, …` (`len` terms) — the affine-bound
    /// (convex) case, always.
    Ap {
        /// First (smallest) step.
        first: i64,
        /// Number of members.
        len: i64,
    },
    /// Explicit sorted step list (defensive fallback).
    Explicit(Vec<i64>),
}

/// The block-level traffic derived symbolically from the projected
/// structure, plus the minimum schedule lag per directed edge.
///
/// This is the LC011 arithmetic-progression machinery as a library
/// entry point: every `(line, dependence)` pair is summarized by one
/// [`ap_overlap`] count in O(1), so the totals scale with *lines*, not
/// iteration-space *points*. `loom_core::symbolic_cost` consumes it to
/// derive per-link message counts without enumerating a single message.
#[derive(Clone, Debug)]
pub struct BlockTraffic {
    /// Directed message counts between distinct blocks.
    pub directed: BTreeMap<(usize, usize), u64>,
    /// Minimum `Π·d` over the dependences contributing to each edge.
    pub min_lag: BTreeMap<(usize, usize), i64>,
    /// Number of `(line, dependence)` pairs summarized in O(1).
    pub summaries: u64,
    /// Pairs that fell back to explicit step lists (0 on affine-bound
    /// spaces; any nonzero count means the AP structure is broken).
    pub fallbacks: u64,
}

impl BlockTraffic {
    /// Total messages between blocks mapped to *distinct* processors
    /// under `assignment` — exactly the engine's unbatched message
    /// count, derived without enumerating arcs.
    pub fn remote_messages(&self, assignment: &[usize]) -> u64 {
        self.directed
            .iter()
            .filter(|(&(a, b), _)| assignment[a] != assignment[b])
            .map(|(_, &c)| c)
            .sum()
    }
}

/// Derive the symbolic block-to-block traffic of a partitioning: the
/// public face of [`check_protocol`]'s derivation (LC011).
pub fn block_traffic(p: &Partitioning) -> BlockTraffic {
    derive_traffic(p)
}

/// Count `|{t ∈ A : t + shift ∈ B}|` for two arithmetic progressions
/// `A = a_first, a_first+stride, …` (`a_len` terms) and likewise `B` —
/// the O(1) overlap kernel behind LC011's message counting, exposed for
/// the symbolic cost engine.
pub fn ap_overlap(
    a_first: i64,
    a_len: i64,
    b_first: i64,
    b_len: i64,
    shift: i64,
    stride: i64,
) -> u64 {
    overlap(
        &LineSteps::Ap {
            first: a_first,
            len: a_len,
        },
        &LineSteps::Ap {
            first: b_first,
            len: b_len,
        },
        shift,
        stride,
    )
}

/// Count `|{t ∈ a : t + w ∈ b}|` for two step sets with common stride.
fn overlap(a: &LineSteps, b: &LineSteps, w: i64, stride: i64) -> u64 {
    match (a, b) {
        (LineSteps::Ap { first: a0, len: la }, LineSteps::Ap { first: b0, len: lb }) => {
            // Targets shifted back by w must align on the stride.
            let b0 = b0 - w;
            if (a0 - b0).rem_euclid(stride) != 0 {
                return 0;
            }
            let lo = (*a0).max(b0);
            let hi = (a0 + stride * (la - 1)).min(b0 + stride * (lb - 1));
            if hi < lo {
                0
            } else {
                ((hi - lo) / stride + 1) as u64
            }
        }
        _ => {
            let to_vec = |s: &LineSteps| -> Vec<i64> {
                match s {
                    LineSteps::Ap { first, len } => (0..*len).map(|i| first + i * stride).collect(),
                    LineSteps::Explicit(v) => v.clone(),
                }
            };
            let av = to_vec(a);
            let bv = to_vec(b);
            av.iter()
                .filter(|&&t| bv.binary_search(&(t + w)).is_ok())
                .count() as u64
        }
    }
}

/// Derive per-block traffic at projection-line granularity.
fn derive_traffic(p: &Partitioning) -> BlockTraffic {
    let qp = p.projected();
    let cs = p.structure();
    let pi = p.time_fn();
    let picf = pi.coeffs();
    let pi_sq: i64 = picf.iter().map(|&c| c * c).sum();
    let g = gcd_all(picf).max(1);
    let stride = pi_sq / g;
    let group_of = &p.grouping().group_of;

    let mut fallbacks = 0u64;
    let lines: Vec<LineSteps> = (0..qp.len())
        .map(|pid| {
            let members = qp.line_members(pid);
            let first = pi.time_of(&cs.points()[members[0]]);
            let last = pi.time_of(&cs.points()[members[members.len() - 1]]);
            let len = members.len() as i64;
            if last - first == stride * (len - 1) {
                LineSteps::Ap { first, len }
            } else {
                // Convexity of affine-bound spaces makes this
                // unreachable; fall back to the exact list anyway.
                fallbacks += 1;
                let mut steps: Vec<i64> = members
                    .iter()
                    .map(|&id| pi.time_of(&cs.points()[id]))
                    .collect();
                steps.sort_unstable();
                LineSteps::Explicit(steps)
            }
        })
        .collect();

    let mut directed: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut min_lag: BTreeMap<(usize, usize), i64> = BTreeMap::new();
    let mut summaries = 0u64;
    for k in qp.nonzero_dep_indices() {
        let dq = &qp.deps()[k];
        let w = pi.dot(&cs.deps()[k]);
        for pid in 0..qp.len() {
            let Some(qid) = qp.id_of(&(&qp.points()[pid] + dq)) else {
                // No point of this line has its successor in the space.
                continue;
            };
            summaries += 1;
            let count = overlap(&lines[pid], &lines[qid], w, stride);
            if count == 0 {
                continue;
            }
            let (a, b) = (group_of[pid], group_of[qid]);
            if a == b {
                continue; // intra-block arcs carry no messages
            }
            *directed.entry((a, b)).or_insert(0) += count;
            min_lag
                .entry((a, b))
                .and_modify(|l| *l = (*l).min(w))
                .or_insert(w);
        }
    }
    BlockTraffic {
        directed,
        min_lag,
        summaries,
        fallbacks,
    }
}

/// `LC011`: the symbolically derived block-to-block message counts must
/// match the Task Interaction Graph exactly.
///
/// The derivation constructs sends and receives from the same
/// `(line, dependence)` summaries — block `a` sends exactly the
/// messages block `b` receives — so agreement with the TIG certifies
/// the send/recv sets are matched without enumerating one message.
pub fn check_protocol(p: &Partitioning, tig: &Tig, stats: &mut SymbolicStats) -> Vec<Diagnostic> {
    let traffic = derive_traffic(p);
    stats.protocol_summaries += traffic.summaries;
    stats.protocol_fallbacks += traffic.fallbacks;

    let mut folded: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (&(a, b), &w) in &traffic.directed {
        *folded.entry((a.min(b), a.max(b))).or_insert(0) += w;
    }
    let expected: BTreeMap<(usize, usize), u64> = tig.edges().collect();

    let mut out = Vec::new();
    let keys: std::collections::BTreeSet<(usize, usize)> =
        folded.keys().chain(expected.keys()).copied().collect();
    for (a, b) in keys {
        let derived = folded.get(&(a, b)).copied().unwrap_or(0);
        let recorded = expected.get(&(a, b)).copied().unwrap_or(0);
        if derived != recorded {
            out.push(Diagnostic::error(
                RuleId::ProtocolSummary,
                Span::TigEdge { a, b },
                format!(
                    "symbolic send/recv summary derives {derived} message(s) between \
                     B{a} and B{b}, but the task graph records {recorded}; the \
                     communication protocol and the TIG disagree"
                ),
            ));
        }
    }
    out
}

/// `LC012`: no cycle of blocking waits with non-positive total lag in
/// the derived block graph.
pub fn check_blocking_cycles(p: &Partitioning) -> Vec<Diagnostic> {
    let traffic = derive_traffic(p);
    let nb = p.num_blocks();
    let edges: Vec<(usize, usize, i64)> = traffic
        .min_lag
        .iter()
        .map(|(&(a, b), &w)| (a, b, w))
        .collect();
    let Some(cycle) = nonpositive_cycle(nb, &edges) else {
        return Vec::new();
    };
    let lag: i64 = cycle
        .windows(2)
        .map(|w| traffic.min_lag.get(&(w[0], w[1])).copied().unwrap_or(0))
        .sum();
    let path: Vec<String> = cycle.iter().map(|b| format!("B{b}")).collect();
    vec![Diagnostic::error(
        RuleId::BlockingCycle,
        Span::Block { block: cycle[0] },
        format!(
            "blocks {} form a cycle of blocking waits with total schedule lag \
             {lag} \u{2264} 0; a receive in this cycle can wait on its own \
             block's progress forever",
            path.join(" \u{2192} ")
        ),
    )]
}

/// Find a directed cycle whose edge weights sum to ≤ 0, as a closed
/// walk `v₀ → … → v₀`, or `None`. Weights are scaled to `w·M − 1`
/// (with `M` above any cycle length) so Bellman–Ford's strict
/// negative-cycle detection catches zero-lag cycles too.
fn nonpositive_cycle(n: usize, edges: &[(usize, usize, i64)]) -> Option<Vec<usize>> {
    if n == 0 || edges.is_empty() {
        return None;
    }
    let m = (edges.len() + 1) as i128;
    let scaled: Vec<(usize, usize, i128)> = edges
        .iter()
        .map(|&(a, b, w)| (a, b, (w as i128) * m - 1))
        .collect();
    let mut dist = vec![0i128; n];
    let mut pred = vec![usize::MAX; n];
    let mut touched = None;
    for _ in 0..n {
        touched = None;
        for &(a, b, w) in &scaled {
            if dist[a] + w < dist[b] {
                dist[b] = dist[a] + w;
                pred[b] = a;
                touched = Some(b);
            }
        }
        touched?;
    }
    // A relaxation in the n-th round: walk predecessors onto the cycle.
    let mut v = touched?;
    for _ in 0..n {
        v = pred[v];
    }
    let start = v;
    let mut cycle = vec![start];
    let mut u = pred[start];
    while u != start {
        cycle.push(u);
        u = pred[u];
    }
    cycle.push(start);
    cycle.reverse();
    Some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_partition::{partition, PartitionConfig};

    fn partition_of(w: &loom_workloads::Workload) -> Partitioning {
        partition(
            w.nest.space().clone(),
            w.verified_deps(),
            w.time_fn(),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn l1_lemma1_proven_without_enumeration() {
        let w = loom_workloads::l1::workload(4);
        let p = partition_of(&w);
        let mut stats = SymbolicStats::default();
        let ds = check_lemma1_symbolic(&p, &mut stats);
        assert!(ds.is_empty(), "{ds:?}");
        // Adjacent l1 lines differ by (±1/2, ∓1/2): the lattice
        // argument alone proves every pair, for every size.
        assert!(stats.lattice_proofs > 0);
        assert_eq!(stats.enumerated, 0);
    }

    #[test]
    fn matmul_lemma1_decided_by_fm() {
        let w = loom_workloads::matmul::workload(4);
        let p = partition_of(&w);
        let mut stats = SymbolicStats::default();
        let ds = check_lemma1_symbolic(&p, &mut stats);
        assert!(ds.is_empty(), "{ds:?}");
        // Grouped matmul lines can have integral differences; those
        // pairs go through the Presburger core, never enumeration.
        assert_eq!(stats.enumerated, 0);
    }

    #[test]
    fn merged_groups_violate_symbolically_and_enumeratively() {
        let w = loom_workloads::l1::workload(4);
        let p = partition_of(&w);
        // Merge every line into one giant group: collisions guaranteed.
        let all: Vec<usize> = (0..p.projected().len()).collect();
        let mut stats = SymbolicStats::default();
        let ds = check_lemma1_symbolic_groups(&p, std::slice::from_ref(&all), &mut stats);
        assert!(!ds.is_empty());
        assert!(ds.iter().all(|d| d.rule == RuleId::ParametricLegality));
        // Oracle agreement on the same merged shape.
        let merged_block: Vec<usize> = all
            .iter()
            .flat_map(|&pid| p.projected().line_members(pid).iter().copied())
            .collect();
        let oracle = crate::check_lemma1(p.time_fn(), p.structure().points(), &[merged_block]);
        assert!(!oracle.is_empty());
    }

    #[test]
    fn legality_symbolic_retags_lc001() {
        let pi = TimeFn::new(vec![1, -1]);
        let deps = vec![vec![0, 1], vec![1, 0]];
        let ds = check_legality_symbolic(&pi, &deps);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, RuleId::ParametricLegality);
    }

    #[test]
    fn protocol_matches_tig_for_builtins() {
        for w in [
            loom_workloads::l1::workload(4),
            loom_workloads::matvec::workload(8),
            loom_workloads::matmul::workload(4),
            loom_workloads::triangular::workload(6),
        ] {
            let p = partition_of(&w);
            let tig = Tig::from_partitioning(&p);
            let mut stats = SymbolicStats::default();
            let ds = check_protocol(&p, &tig, &mut stats);
            assert!(ds.is_empty(), "{}: {ds:?}", w.nest.name());
            assert_eq!(stats.protocol_fallbacks, 0, "{}", w.nest.name());
        }
    }

    #[test]
    fn tampered_tig_detected() {
        let w = loom_workloads::l1::workload(4);
        let p = partition_of(&w);
        let tig = Tig::from_partitioning(&p);
        let mut edges: BTreeMap<(usize, usize), u64> = tig.edges().collect();
        let (&key, &weight) = edges.iter().next().unwrap();
        edges.insert(key, weight + 1);
        let weights: Vec<u64> = (0..tig.len()).map(|v| tig.weight(v)).collect();
        let tampered = Tig::from_parts(weights, edges);
        let mut stats = SymbolicStats::default();
        let ds = check_protocol(&p, &tampered, &mut stats);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, RuleId::ProtocolSummary);
    }

    #[test]
    fn clean_pipelines_have_no_blocking_cycles() {
        for w in [
            loom_workloads::l1::workload(4),
            loom_workloads::matvec::workload(8),
        ] {
            let p = partition_of(&w);
            assert!(check_blocking_cycles(&p).is_empty());
        }
    }

    #[test]
    fn nonpositive_cycle_detection() {
        // 0 → 1 (lag 1) → 0 (lag −1): total 0 ⇒ flagged.
        let cyc = nonpositive_cycle(2, &[(0, 1, 1), (1, 0, -1)]);
        assert!(cyc.is_some());
        // 0 → 1 (1) → 0 (1): total 2 ⇒ fine.
        assert!(nonpositive_cycle(2, &[(0, 1, 1), (1, 0, 1)]).is_none());
        // Self-contained positive cycles through three nodes.
        assert!(nonpositive_cycle(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]).is_none());
        assert!(nonpositive_cycle(3, &[(0, 1, 1), (1, 2, -1), (2, 0, 0)]).is_some());
    }

    #[test]
    fn nonuniform_pair_reported_with_evidence() {
        use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};
        let nest = LoopNest::new(
            "nonuniform",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![Aff::new(vec![2], 0)]),
                vec![Access::simple("A", 1, &[(0, 0)])],
            )],
        )
        .unwrap();
        // A[2i] = A[i] is now *admitted* through uniformization: the
        // cover certificate (LC016 Info) and the over-approximation
        // warning (LC017) replace the old LC010 rejection.
        let mut stats = UniformizeStats::default();
        let (ds, u) = check_access_dependences_uniformized(&nest, None, &mut stats);
        let u = u.expect("nest admitted via uniformization");
        assert_eq!(u.vectors, vec![vec![1]]);
        assert!(ds.iter().any(|d| d.rule == RuleId::UniformizeSoundness
            && d.severity == crate::Severity::Info
            && d.message.contains("cover certified")));
        assert!(ds.iter().any(
            |d| d.rule == RuleId::UniformizeTightness && d.severity == crate::Severity::Warning
        ));
        assert!(!ds.iter().any(|d| d.severity == crate::Severity::Error));
        // A genuinely uncoverable nest (rank mismatch) still rejects
        // with the classic LC010 pairwise evidence.
        let bad = LoopNest::new(
            "ranks",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 2, &[(0, 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )],
        )
        .unwrap();
        let (ds, u) = check_access_dependences_uniformized(&bad, None, &mut stats);
        assert!(u.is_none());
        assert!(ds.iter().any(|d| d.rule == RuleId::AccessDependence
            && d.severity == crate::Severity::Error
            && d.message.contains("different ranks")));
    }

    #[test]
    fn scan_evidence_is_budget_capped() {
        use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};
        // Many distinct non-uniform read pairs against one write: the
        // scan stops at the budget and notes the elided remainder.
        let reads: Vec<Access> = (2..20)
            .map(|c| Access::new("A", vec![Aff::new(vec![c], 0)]))
            .collect();
        let nest = LoopNest::new(
            "wide",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(Access::simple("A", 1, &[(0, 0)]), reads)],
        )
        .unwrap();
        let ds = scan_nonuniform_pairs(&nest);
        let errors = ds
            .iter()
            .filter(|d| d.severity == crate::Severity::Error)
            .count();
        assert!(errors <= EVIDENCE_BUDGET);
        assert!(ds
            .iter()
            .any(|d| d.severity == crate::Severity::Info && d.message.contains("elided")));
    }

    #[test]
    fn parity_disjoint_accesses_accepted_exactly() {
        use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};
        // A[2i] vs A[2i+1]: same linear part, never conflict — accepted
        // by the front end with an empty dependence set, and LC010
        // agrees with the (empty) declared set.
        let two_i = Aff::new(vec![2], 0);
        let nest = LoopNest::new(
            "parity",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![two_i.clone()]),
                vec![Access::new("A", vec![two_i + 1])],
            )],
        )
        .unwrap();
        assert!(check_access_dependences(&nest, Some(&[])).is_empty());
    }

    #[test]
    fn missed_and_dead_declared_dependences_flagged() {
        let w = loom_workloads::l1::workload(4);
        let derived = w.verified_deps();
        // Complete declared set: clean.
        assert!(check_access_dependences(&w.nest, Some(&derived)).is_empty());
        // Drop one: missed-dependence error.
        let missing: Vec<Point> = derived[1..].to_vec();
        let ds = check_access_dependences(&w.nest, Some(&missing));
        assert!(ds
            .iter()
            .any(|d| d.severity == crate::Severity::Error && d.message.contains("missing")));
        // Add a bogus one: dead-synchronization warning.
        let mut extra = derived.clone();
        extra.push(vec![3, 3]);
        let ds = check_access_dependences(&w.nest, Some(&extra));
        assert!(ds
            .iter()
            .any(|d| d.severity == crate::Severity::Warning && d.message.contains("not induced")));
    }
}
