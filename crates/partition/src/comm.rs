//! Communication accounting: how many dependence arcs cross block
//! boundaries, and which groups depend on which.

use crate::blocks::Partitioning;
use std::collections::BTreeSet;

/// Dependence-arc counts for a partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommStats {
    /// Total dependence arcs in the computational structure.
    pub total_arcs: usize,
    /// Arcs whose endpoints lie in different blocks — each needs an
    /// interprocessor message when blocks map to distinct processors.
    pub interblock_arcs: usize,
}

impl CommStats {
    /// Fraction of arcs requiring communication (0 when there are none).
    pub fn interblock_fraction(&self) -> f64 {
        if self.total_arcs == 0 {
            0.0
        } else {
            self.interblock_arcs as f64 / self.total_arcs as f64
        }
    }
}

/// Count total and interblock dependence arcs at the iteration level
/// (the paper's "33 dependencies, 12 interprocessor" for loop L1).
pub fn comm_stats(p: &Partitioning) -> CommStats {
    let cs = p.structure();
    let mut total = 0;
    let mut inter = 0;
    for id in 0..cs.len() {
        for (succ, _dep) in cs.successors(id) {
            total += 1;
            if p.block_of(id) != p.block_of(succ) {
                inter += 1;
            }
        }
    }
    CommStats {
        total_arcs: total,
        interblock_arcs: inter,
    }
}

/// The group-dependence graph at the *projected* level: `out[i]` is the
/// set of groups that depend on (receive data from) group `i`, i.e.
/// there is a projected point `u ∈ G_i` and dependence `d^p` with
/// `u + d^p ∈ G_j`, `j ≠ i`. This is the graph of the paper's Fig. 7 and
/// the quantity bounded by Theorem 2.
pub fn group_dependence_graph(p: &Partitioning) -> Vec<BTreeSet<usize>> {
    let qp = p.projected();
    let g = p.grouping();
    let mut out: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); g.len()];
    for pid in 0..qp.len() {
        let from = g.group_of[pid];
        for d in qp.deps() {
            if d.is_zero() {
                continue;
            }
            let q = &qp.points()[pid] + d;
            if let Some(qid) = qp.id_of(&q) {
                let to = g.group_of[qid];
                if to != from {
                    out[from].insert(to);
                }
            }
        }
    }
    out
}

/// Per-ordered-pair interblock arc counts at the iteration level:
/// `(src_block, dst_block) → number of arcs`, excluding intra-block
/// pairs. These are the message volumes the machine model charges.
pub fn block_traffic(p: &Partitioning) -> std::collections::BTreeMap<(usize, usize), u64> {
    let cs = p.structure();
    let mut traffic = std::collections::BTreeMap::new();
    for id in 0..cs.len() {
        for (succ, _dep) in cs.successors(id) {
            let (a, b) = (p.block_of(id), p.block_of(succ));
            if a != b {
                *traffic.entry((a, b)).or_insert(0u64) += 1;
            }
        }
    }
    traffic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{partition, PartitionConfig};
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    use loom_rational::QVec;

    fn l1() -> Partitioning {
        partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn l1_comm_matches_paper() {
        // Paper §II: "the number of data dependencies between index points
        // is 33, and only 12 of them require interprocessor communication."
        let stats = comm_stats(&l1());
        assert_eq!(stats.total_arcs, 33);
        assert_eq!(stats.interblock_arcs, 12);
        assert!((stats.interblock_fraction() - 12.0 / 33.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_group_graph_matches_paper_fig7() {
        // With the paper's choices, G₁₀ sends data to 4 = 2m − β groups.
        let p = partition(
            IterSpace::rect(&[4, 4, 4]).unwrap(),
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            TimeFn::wavefront(3),
            &PartitionConfig {
                grouping_choice: Some(0),
                seed: Some(QVec::from_ints(&[-1, -1, 2])),
            },
        )
        .unwrap();
        let graph = group_dependence_graph(&p);
        let m = 3;
        let beta = p.vectors().beta;
        assert_eq!(beta, 2);
        let max_out = graph.iter().map(BTreeSet::len).max().unwrap();
        assert!(
            max_out <= 2 * m - beta,
            "Theorem 2 violated: out-degree {max_out} > {}",
            2 * m - beta
        );
        // At least one interior group attains the bound (the paper's G₁₀).
        assert_eq!(max_out, 4);
    }

    #[test]
    fn traffic_sums_to_interblock() {
        let p = l1();
        let traffic = block_traffic(&p);
        let sum: u64 = traffic.values().sum();
        assert_eq!(sum as usize, comm_stats(&p).interblock_arcs);
        // No self-loops.
        assert!(traffic.keys().all(|&(a, b)| a != b));
    }

    #[test]
    fn one_block_means_no_communication() {
        // A single dependence parallel to Π: everything lands in one group
        // per line but lines are independent → no interblock arcs along
        // projected deps… Build the truly-degenerate case: D = {(1,1)},
        // Π = (1,1): every line is its own block; arcs stay inside lines.
        let p = partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![1, 1]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        let stats = comm_stats(&p);
        assert_eq!(stats.interblock_arcs, 0);
        assert!(stats.total_arcs > 0);
        assert_eq!(stats.interblock_fraction(), 0.0);
    }
}
