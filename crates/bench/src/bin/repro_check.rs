//! A10 — static-check cost: the symbolic engine (`LC009`–`LC012`)
//! against the enumerative rules (`LC001`–`LC007`) as the iteration
//! space grows.
//!
//! The enumerative verifier walks every block point (Lemma 1) and every
//! message of the generated SPMD program (vector clocks), so its cost
//! scales with the instantiated iteration space. The symbolic engine
//! decides the same properties from the lattice and affine structure —
//! O(lines·deps) summaries instead of O(iterations) walks — so its cost
//! depends on the number of projection lines, not the extent along Π.
//! For each workload family at three sizes this times both engines on
//! identical prebuilt artifacts, asserts both return the same clean
//! verdict, and writes the comparison to `BENCH_check.json`. `--smoke`
//! shrinks the sweep for CI; `--out <path>` redirects the artifact.

use loom_check::{check_pipeline_mode, CheckMode, PipelineCheck};
use loom_core::report::Table;
use loom_hyperplane::TimeFn;
use loom_mapping::map_partitioning;
use loom_obs::{Json, Recorder};
use loom_partition::{partition, PartitionConfig, Tig};
use loom_workloads::Workload;
use std::time::Instant;

/// Median-of-`reps` wall time for one engine over prebuilt artifacts.
fn time_mode(input: &PipelineCheck<'_>, mode: CheckMode, reps: usize) -> (u64, bool) {
    let mut times = Vec::with_capacity(reps);
    let mut clean = true;
    for _ in 0..reps {
        let start = Instant::now();
        let report = check_pipeline_mode(input, mode, &Recorder::disabled());
        times.push(start.elapsed().as_micros() as u64);
        clean &= !report.has_errors();
    }
    times.sort_unstable();
    (times[times.len() / 2], clean)
}

fn sweep(smoke: bool) -> Vec<(&'static str, Vec<Workload>)> {
    use loom_workloads::*;
    if smoke {
        return vec![
            (
                "l1",
                vec![l1::workload(4), l1::workload(8), l1::workload(12)],
            ),
            (
                "matvec",
                vec![
                    matvec::workload(8),
                    matvec::workload(12),
                    matvec::workload(16),
                ],
            ),
        ];
    }
    vec![
        (
            "l1",
            vec![l1::workload(8), l1::workload(16), l1::workload(32)],
        ),
        (
            "matvec",
            vec![
                matvec::workload(8),
                matvec::workload(16),
                matvec::workload(32),
            ],
        ),
        (
            "sor",
            vec![
                sor::workload(8, 8),
                sor::workload(16, 16),
                sor::workload(32, 32),
            ],
        ),
        (
            "triangular",
            vec![
                triangular::workload(8),
                triangular::workload(16),
                triangular::workload(32),
            ],
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_check.json".to_string());
    let reps = if smoke { 3 } else { 9 };

    println!(
        "A10 — static-check cost: symbolic LC009-LC012 vs enumerative\n\
         LC001-LC007 on identical artifacts, {reps} reps, median wall time{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let mut t = Table::new([
        "workload",
        "points",
        "lines",
        "enumerative_us",
        "symbolic_us",
        "speedup",
    ]);
    let mut entries: Vec<Json> = Vec::new();
    for (family, workloads) in sweep(smoke) {
        for w in workloads {
            let p = partition(
                w.nest.space().clone(),
                w.deps.clone(),
                TimeFn::new(w.pi.clone()),
                &PartitionConfig::default(),
            )
            .expect("builtin workloads partition");
            let tig = Tig::from_partitioning(&p);
            let mapping = map_partitioning(&p, 1).expect("builtin workloads map");
            let pi = TimeFn::new(w.pi.clone());
            let input = PipelineCheck {
                nest: &w.nest,
                deps: &w.deps,
                pi: &pi,
                partitioning: &p,
                tig: &tig,
                assignment: mapping.assignment(),
                cube_dim: mapping.cube().dim(),
            };
            let points = p.structure().points().len();
            let lines = p.projected().len();
            let (enum_us, enum_clean) = time_mode(&input, CheckMode::Enumerative, reps);
            let (sym_us, sym_clean) = time_mode(&input, CheckMode::Symbolic, reps);
            assert!(
                enum_clean && sym_clean,
                "{family}@{points}: engines disagree on the clean verdict"
            );
            let speedup = enum_us as f64 / sym_us.max(1) as f64;
            t.row([
                family.to_string(),
                format!("{points}"),
                format!("{lines}"),
                format!("{enum_us}"),
                format!("{sym_us}"),
                format!("{speedup:.1}x"),
            ]);
            entries.push(Json::obj(vec![
                ("workload", Json::from(family)),
                ("points", Json::from(points)),
                ("lines", Json::from(lines)),
                ("enumerative_us", Json::from(enum_us)),
                ("symbolic_us", Json::from(sym_us)),
                ("speedup", Json::from((speedup * 10.0).round() / 10.0)),
                ("verdicts_agree", Json::from(true)),
            ]));
        }
    }
    println!("{t}");
    let doc = Json::obj(vec![
        ("bench", Json::from("check")),
        ("reps", Json::from(reps)),
        ("smoke", Json::from(smoke)),
        ("entries", Json::Arr(entries)),
    ]);
    std::fs::write(&out_path, doc.render_pretty()).expect("write bench artifact");
    println!("wrote {out_path}");
    loom_bench::maybe_write_metrics("a10_check", &doc);
    loom_bench::maybe_append_history("check", &doc);
    println!(
        "\nevery row runs both engines on the same partitioning, TIG, and\n\
         mapping: the enumerative column grows with the point count, the\n\
         symbolic column tracks the projection-line count — the check is\n\
         O(blocks), not O(iterations)."
    );
}
