//! A minimal wall-clock micro-benchmark harness — the offline
//! replacement for criterion used by the `loom-bench` bench targets
//! (`harness = false`).
//!
//! Each benchmark is auto-calibrated so one sample lasts roughly
//! [`Bench::TARGET_SAMPLE_NS`], then timed over a fixed number of
//! samples; the report prints min/median/mean nanoseconds per
//! iteration. Set `LOOM_BENCH_SAMPLES` to change the sample count
//! (e.g. `LOOM_BENCH_SAMPLES=3` for a smoke run).

use std::hint::black_box;
use std::time::Instant;

/// Per-benchmark timing statistics, in nanoseconds per iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchStats {
    /// Benchmark name (`group/case` by convention).
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample, ns/iter.
    pub min_ns: u64,
    /// Median sample, ns/iter.
    pub median_ns: u64,
    /// Mean over all samples, ns/iter.
    pub mean_ns: u64,
}

/// A bench runner: call [`Bench::run`] once per benchmark, then
/// [`Bench::report`] to print the aligned results table.
#[derive(Debug, Default)]
pub struct Bench {
    samples: u64,
    results: Vec<BenchStats>,
}

impl Bench {
    /// Calibration target: iterate until one sample takes about this long.
    pub const TARGET_SAMPLE_NS: u64 = 20_000_000;

    /// A runner with the default sample count (10), overridable via the
    /// `LOOM_BENCH_SAMPLES` environment variable.
    pub fn from_env() -> Bench {
        let samples = std::env::var("LOOM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Bench::with_samples(samples)
    }

    /// A runner taking exactly `samples` timed samples per benchmark.
    pub fn with_samples(samples: u64) -> Bench {
        Bench {
            samples: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Time `f`, auto-calibrating the iteration count so each sample
    /// lasts about [`Bench::TARGET_SAMPLE_NS`]. The closure's result is
    /// passed through [`black_box`], so callers don't need to.
    pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchStats {
        // Calibrate: one untimed warm-up doubles as the cost probe.
        let t = Instant::now();
        black_box(f());
        let once_ns = (t.elapsed().as_nanos() as u64).max(1);
        let iters = (Self::TARGET_SAMPLE_NS / once_ns).clamp(1, 1_000_000);

        let mut per_iter: Vec<u64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                (t.elapsed().as_nanos() as u64) / iters
            })
            .collect();
        per_iter.sort_unstable();
        let stats = BenchStats {
            name: name.to_string(),
            iters,
            samples: self.samples,
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            mean_ns: per_iter.iter().sum::<u64>() / self.samples,
        };
        self.results.push(stats);
        self.results.last().unwrap()
    }

    /// All collected results, in run order.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// The results as an aligned text table.
    pub fn report(&self) -> String {
        let name_w = self
            .results
            .iter()
            .map(|s| s.name.len())
            .chain([9])
            .max()
            .unwrap();
        let mut out = format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>12}  {:>9}\n",
            "benchmark", "min ns/iter", "median", "mean", "iters"
        );
        for s in &self.results {
            out.push_str(&format!(
                "{:<name_w$}  {:>12}  {:>12}  {:>12}  {:>9}\n",
                s.name, s.min_ns, s.median_ns, s.mean_ns, s.iters
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut b = Bench::with_samples(2);
        let stats = b.run("sum/1k", || (0..1000u64).sum::<u64>()).clone();
        assert_eq!(stats.name, "sum/1k");
        assert_eq!(stats.samples, 2);
        assert!(stats.iters >= 1);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.mean_ns.max(stats.median_ns));
        let report = b.report();
        assert!(report.contains("sum/1k"));
        assert!(report.starts_with("benchmark"));
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn sample_count_is_clamped_to_one() {
        let mut b = Bench::with_samples(0);
        let stats = b.run("noop", || 1u8);
        assert_eq!(stats.samples, 1);
    }
}
