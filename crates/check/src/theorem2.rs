//! Rules `LC003` and `LC006` — Theorem 2's neighbor bound and the
//! grouping-vector selection invariants behind it.
//!
//! Theorem 2: with `m` dependence vectors and `β` the rank of the
//! projected dependence matrix `mat(D^p)`, every group communicates
//! with at most `2m − β` other groups. `LC003` recomputes `β` from
//! scratch (it does not trust the value the partitioner recorded) and
//! checks the bound against the statically derived group dependence
//! graph. `LC006` validates the recorded [`GroupingVectors`] themselves:
//! `β` matches the rank, the chosen set `{d_l^p} ∪ Ψ` has exactly `β`
//! members, and those members are linearly independent — the invariant
//! that used to be a debug-only assert inside `loom-partition`.

use crate::diag::{Diagnostic, RuleId, Span};
use loom_partition::comm::group_dependence_graph;
use loom_partition::{GroupingVectors, Partitioning, ProjectedStructure};
use loom_rational::{linalg, QMat, QVec};
use std::collections::BTreeSet;

/// Rank of the nonzero projected dependence columns (zero columns never
/// change rank).
fn projected_rank(qp: &ProjectedStructure) -> usize {
    let cols: Vec<QVec> = qp
        .nonzero_dep_indices()
        .into_iter()
        .map(|i| qp.deps()[i].clone())
        .collect();
    if cols.is_empty() {
        0
    } else {
        linalg::rank(&QMat::from_columns(&cols))
    }
}

/// Check Theorem 2's `2m − β` bound on a partitioning.
pub fn check_theorem2(p: &Partitioning) -> Vec<Diagnostic> {
    let m = p.structure().deps().len();
    let beta = projected_rank(p.projected());
    check_neighbor_bound(&group_dependence_graph(p), m, beta)
}

/// The bound check itself, on an explicit out-neighbor graph — exposed
/// so tests can feed synthetic graphs that violate the theorem.
pub fn check_neighbor_bound(graph: &[BTreeSet<usize>], m: usize, beta: usize) -> Vec<Diagnostic> {
    let bound = (2 * m).saturating_sub(beta);
    graph
        .iter()
        .enumerate()
        .filter(|(_, targets)| targets.len() > bound)
        .map(|(g, targets)| {
            Diagnostic::error(
                RuleId::NeighborBound,
                Span::Group { group: g },
                format!(
                    "group sends data to {} other groups, exceeding \
                     2m\u{2212}\u{3b2} = 2\u{b7}{m}\u{2212}{beta} = {bound} (Theorem 2)",
                    targets.len()
                ),
            )
        })
        .collect()
}

/// Rule `LC006`: validate a [`GroupingVectors`] selection against the
/// projected structure it was derived from.
pub fn check_grouping_vectors(qp: &ProjectedStructure, gv: &GroupingVectors) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ndeps = qp.deps().len();
    for i in gv.omega() {
        if i >= ndeps {
            out.push(Diagnostic::error(
                RuleId::GroupingRank,
                Span::Nest,
                format!("grouping-vector index {i} out of range (have {ndeps} dependences)"),
            ));
            return out;
        }
    }
    let rank = projected_rank(qp);
    if gv.beta != rank {
        out.push(Diagnostic::error(
            RuleId::GroupingRank,
            Span::Nest,
            format!(
                "recorded \u{3b2} = {} disagrees with rank(mat(D^p)) = {rank}",
                gv.beta
            ),
        ));
    }
    match gv.grouping {
        None => {
            if rank != 0 {
                out.push(Diagnostic::error(
                    RuleId::GroupingRank,
                    Span::Nest,
                    format!(
                        "degenerate grouping (no grouping vector) but mat(D^p) \
                         has rank {rank} > 0"
                    ),
                ));
            }
            if !gv.auxiliary.is_empty() {
                out.push(Diagnostic::error(
                    RuleId::GroupingRank,
                    Span::Nest,
                    "auxiliary vectors present without a grouping vector",
                ));
            }
        }
        Some(g) => {
            if gv.auxiliary.len() + 1 != gv.beta {
                out.push(Diagnostic::error(
                    RuleId::GroupingRank,
                    Span::Nest,
                    format!(
                        "\u{3a9} holds {} vector(s) where \u{3b2} = {} requires a \
                         rank-\u{3b2} independent set",
                        gv.auxiliary.len() + 1,
                        gv.beta
                    ),
                ));
            }
            let chosen: Vec<QVec> = std::iter::once(g)
                .chain(gv.auxiliary.iter().copied())
                .map(|i| qp.deps()[i].clone())
                .collect();
            if !linalg::independent(&chosen) {
                out.push(Diagnostic::error(
                    RuleId::GroupingRank,
                    Span::Nest,
                    "the chosen grouping/auxiliary set is linearly dependent",
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    use loom_partition::{partition, ComputationalStructure, PartitionConfig};

    fn l1() -> Partitioning {
        partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn l1_satisfies_theorem2() {
        assert!(check_theorem2(&l1()).is_empty());
    }

    #[test]
    fn synthetic_graph_over_bound_flagged() {
        // m = 1, β = 1 → bound 1; vertex 0 talks to two groups.
        let graph = vec![BTreeSet::from([1, 2]), BTreeSet::new(), BTreeSet::new()];
        let ds = check_neighbor_bound(&graph, 1, 1);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].span, Span::Group { group: 0 });
    }

    #[test]
    fn l1_grouping_vectors_validate() {
        let p = l1();
        assert!(check_grouping_vectors(p.projected(), p.vectors()).is_empty());
    }

    #[test]
    fn fabricated_beta_mismatch_flagged() {
        let p = l1();
        let mut gv = p.vectors().clone();
        gv.beta += 1;
        let ds = check_grouping_vectors(p.projected(), &gv);
        assert!(ds.iter().any(|d| d.rule == RuleId::GroupingRank));
    }

    #[test]
    fn fabricated_short_omega_flagged() {
        // Recompute the real β but drop the auxiliary set — exactly the
        // condition the promoted partition assert guards.
        let cs = ComputationalStructure::new(
            IterSpace::rect(&[4, 4, 4]).unwrap(),
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
        )
        .unwrap();
        let qp = ProjectedStructure::project(&cs, &TimeFn::wavefront(3));
        let real = loom_partition::grouping::select_vectors(&qp, None).unwrap();
        let gv = GroupingVectors {
            auxiliary: Vec::new(),
            ..real
        };
        let ds = check_grouping_vectors(&qp, &gv);
        assert!(!ds.is_empty());
    }
}
