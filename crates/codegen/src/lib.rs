//! SPMD code generation — the output stage of the parallelizing
//! compiler the paper describes.
//!
//! After Algorithm 1 partitions a nest into blocks and Algorithm 2 maps
//! blocks onto processors, each processor must run a *program*: execute
//! its own iterations in hyperplane order, receive remote operands
//! before using them, and send produced values to the processors that
//! need them. This crate:
//!
//! * generates that program per processor ([`gen::generate`]) — a list
//!   of [`ops::Op`]s (`Recv`, `Compute`, `Send`) tagged with the
//!   dependence arcs they serve,
//! * renders it as readable pseudo-code ([`render`]),
//! * and *runs* it under a blocking message-passing interpreter with
//!   per-processor private memories ([`interp`]), which detects
//!   deadlock and whose gathered result is compared bit-for-bit against
//!   the sequential oracle in the tests.
//!
//! Anti and output dependences carry no data across private memories —
//! they become empty synchronization tokens that only enforce ordering,
//! mirroring how a distributed-memory code generator treats them.

#![deny(missing_docs)]

pub mod gen;
pub mod interp;
pub mod ops;
pub mod render;
pub mod threads;

pub use gen::{generate, CodegenError};
pub use interp::{run, run_schedule, InterpError};
pub use ops::{Op, SpmdProgram, Tag};
pub use threads::{run_threaded, run_threaded_gathered, ThreadError};
