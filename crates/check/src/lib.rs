//! `loom-check` — a static verifier and race detector for the
//! partition/map/codegen pipeline.
//!
//! The paper's correctness argument is a chain of theorems: the time
//! transformation Π is legal (`Π·d ≥ 1`), iterations merged into one
//! block never share a step (Lemma 1), each group talks to at most
//! `2m − β` others (Theorem 2), and the Gray-coded hypercube mapping
//! puts communicating neighbors one hop apart. This crate turns each
//! link of that chain — plus a happens-before data-race analysis of
//! the generated SPMD program — into an executable lint that inspects
//! the pipeline's artifacts *without running them* and reports every
//! violation as a structured [`Diagnostic`]: stable rule id, severity,
//! a span into the loop IR or the derived structures, a human message,
//! and machine-readable JSON.
//!
//! Rule catalogue (see `docs/CHECKS.md`):
//!
//! | id      | name               | checks                                  |
//! |---------|--------------------|-----------------------------------------|
//! | `LC001` | schedule-legality  | `Π·dᵢ ≥ 1` for every dependence         |
//! | `LC002` | block-shared-step  | Lemma 1, by exact rational arithmetic   |
//! | `LC003` | neighbor-bound     | Theorem 2's `2m − β` out-degree bound   |
//! | `LC004` | gray-adjacency     | unit-hop mapping of Ω-neighbor blocks   |
//! | `LC005` | data-race          | happens-before race scan of SPMD code   |
//! | `LC006` | grouping-rank      | Ω is a rank-β independent set           |
//! | `LC007` | unmatched-message  | every `Recv` is satisfiable, no orphans |
//! | `LC008` | fault-plan         | fault plans reference live hardware     |
//!
//! The checks run standalone (each `check_*` function takes exactly
//! the artifacts it inspects), through [`check_pipeline`] on a bundle
//! of everything the pipeline produced, via `loom check` on the CLI,
//! or as a gated `loom-core` pipeline stage
//! (`MachineOptions::static_check`).

#![deny(missing_docs)]

mod diag;
mod faultplan;
mod gray;
mod legality;
mod lemma1;
mod races;
mod theorem2;

pub use diag::{Diagnostic, Report, RuleId, Severity, Span};
pub use faultplan::check_fault_plan;
pub use gray::check_gray;
pub use legality::check_legality;
pub use lemma1::check_lemma1;
pub use races::check_races;
pub use theorem2::{check_grouping_vectors, check_neighbor_bound, check_theorem2};

use loom_hyperplane::TimeFn;
use loom_loopir::{LoopNest, Point};
use loom_obs::Recorder;
use loom_partition::{Partitioning, Tig};

/// Everything the pipeline produced, bundled for [`check_pipeline`].
pub struct PipelineCheck<'a> {
    /// The source nest.
    pub nest: &'a LoopNest,
    /// The extracted dependence vectors `D`.
    pub deps: &'a [Point],
    /// The chosen time transformation Π.
    pub pi: &'a TimeFn,
    /// Algorithm 1's partitioning.
    pub partitioning: &'a Partitioning,
    /// The Task Interaction Graph of the blocks.
    pub tig: &'a Tig,
    /// The block → processor assignment (Algorithm 2's Gray mapping).
    pub assignment: &'a [usize],
    /// Hypercube dimension the assignment targets.
    pub cube_dim: usize,
}

/// Run every check against a pipeline's artifacts.
///
/// The race scan (`LC005`/`LC007`) needs an SPMD program; it is
/// generated here from the partitioning and assignment. Nests outside
/// the value-routable class (e.g. multi-dimensional accumulations like
/// conv2d) cannot be code-generated, and the race scan is skipped with
/// an `Info` diagnostic instead of an error — the remaining rules
/// still run.
pub fn check_pipeline(input: &PipelineCheck<'_>) -> Report {
    check_pipeline_with(input, &Recorder::disabled())
}

/// [`check_pipeline`] with instrumentation: when `recorder` is enabled,
/// the run records a `check.total` span and one `check.<code>` counter
/// per diagnostic.
pub fn check_pipeline_with(input: &PipelineCheck<'_>, recorder: &Recorder) -> Report {
    let _total = recorder.span("check.total");
    let mut report = Report::new();
    report.extend(check_legality(input.pi, input.deps));
    report.extend(check_lemma1(
        input.pi,
        input.partitioning.structure().points(),
        input.partitioning.blocks(),
    ));
    report.extend(check_theorem2(input.partitioning));
    report.extend(check_grouping_vectors(
        input.partitioning.projected(),
        input.partitioning.vectors(),
    ));
    report.extend(check_gray(
        input.partitioning,
        input.tig,
        input.assignment,
        input.cube_dim,
    ));
    match loom_codegen::generate(
        input.nest,
        input.partitioning,
        input.assignment,
        1usize << input.cube_dim,
    ) {
        Ok(cg) => report.extend(check_races(input.nest, &cg.program)),
        Err(e) => report.push(Diagnostic::info(
            RuleId::DataRace,
            Span::Nest,
            format!("race analysis skipped: no SPMD program ({e})"),
        )),
    }
    for (code, n) in report.rule_counts() {
        recorder.add(&format!("check.{code}"), n);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_mapping::map_partitioning;
    use loom_partition::{partition, PartitionConfig};

    fn bundle_of(w: &loom_workloads::Workload, cube_dim: usize) -> Report {
        let deps = w.verified_deps();
        let pi = w.time_fn();
        let p = partition(
            w.nest.space().clone(),
            deps.clone(),
            pi.clone(),
            &PartitionConfig::default(),
        )
        .unwrap();
        let tig = Tig::from_partitioning(&p);
        let m = map_partitioning(&p, cube_dim).unwrap();
        check_pipeline(&PipelineCheck {
            nest: &w.nest,
            deps: &deps,
            pi: &pi,
            partitioning: &p,
            tig: &tig,
            assignment: m.assignment(),
            cube_dim,
        })
    }

    #[test]
    fn l1_pipeline_is_clean() {
        let w = loom_workloads::l1::workload(4);
        let r = bundle_of(&w, 1);
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn conv2d_skips_races_with_info() {
        let w = loom_workloads::conv2d::workload(4, 2);
        let r = bundle_of(&w, 1);
        assert!(!r.has_errors(), "{}", r.render_human());
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.severity == Severity::Info && d.rule == RuleId::DataRace));
    }

    #[test]
    fn counters_flow_through_recorder() {
        let w = loom_workloads::l1::workload(4);
        let deps = w.verified_deps();
        let pi = loom_hyperplane::TimeFn::new(vec![1, 1]);
        let p = partition(
            w.nest.space().clone(),
            deps.clone(),
            pi.clone(),
            &PartitionConfig::default(),
        )
        .unwrap();
        let tig = Tig::from_partitioning(&p);
        let m = map_partitioning(&p, 1).unwrap();
        let mut scrambled = m.assignment().to_vec();
        scrambled.reverse();
        let rec = Recorder::enabled();
        let report = check_pipeline_with(
            &PipelineCheck {
                nest: &w.nest,
                deps: &deps,
                pi: &pi,
                partitioning: &p,
                tig: &tig,
                assignment: &scrambled,
                cube_dim: 1,
            },
            &rec,
        );
        let counters = rec.counters();
        for (code, n) in report.rule_counts() {
            assert_eq!(counters.get(&format!("check.{code}")), Some(&n));
        }
        assert!(rec.spans().iter().any(|s| s.name == "check.total"));
    }
}
