//! Cross-run regression detection over bench/metrics documents.
//!
//! [`diff`] compares two JSON documents (e.g. a committed
//! `BENCH_explore.json` against a freshly generated one) and classifies
//! every differing leaf:
//!
//! * **timing leaves** (keys ending in `_us`, or containing `speedup`)
//!   are compared on the [`Histogram`] power-of-two bucket scale — two
//!   values are "the same" when their bucket indices differ by at most
//!   the configured tolerance, which makes the noise threshold scale
//!   with the magnitude of the measurement, exactly like the histogram
//!   the simulator already uses. Worse-direction changes beyond
//!   tolerance are [`FindingKind::Regression`]; better-direction ones
//!   are the informational [`FindingKind::Improvement`].
//! * **all other leaves** must match exactly; a mismatch is
//!   [`FindingKind::Drift`] — e.g. a changed verdict, candidate count,
//!   or ranking flag.
//! * **structural mismatches** (missing keys, array length changes,
//!   type changes) are [`FindingKind::Shape`].
//!
//! Arrays of entry objects are matched by identity fields (`workload`,
//! `pi_bound`, `size`, `points`, `reps` — whichever are present) rather
//! than by index, so reordering entries is not a regression but
//! dropping one is.
//!
//! `loom obs diff` drives this and exits nonzero when
//! [`DiffReport::has_regressions`] holds.

use crate::histogram::Histogram;
use crate::json::Json;

/// How a differing leaf is classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A timing/speedup leaf moved in the worse direction beyond the
    /// noise tolerance.
    Regression,
    /// A timing/speedup leaf moved in the better direction beyond the
    /// noise tolerance (informational; never fails a gate).
    Improvement,
    /// A non-timing leaf changed value.
    Drift,
    /// A structural mismatch: missing key, length change, type change.
    Shape,
}

impl FindingKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Regression => "REGRESSION",
            FindingKind::Improvement => "improvement",
            FindingKind::Drift => "DRIFT",
            FindingKind::Shape => "SHAPE",
        }
    }
}

/// One differing leaf.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Dotted path to the leaf (array entries keyed by identity when
    /// possible, e.g. `entries[workload=matvec].explore_us`).
    pub path: String,
    /// Classification.
    pub kind: FindingKind,
    /// Old value, rendered.
    pub old: String,
    /// New value, rendered.
    pub new: String,
    /// Human explanation (bucket indices, direction, …).
    pub detail: String,
}

/// The result of comparing two documents.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Everything that differed.
    pub findings: Vec<Finding>,
    /// Number of leaves compared.
    pub compared: usize,
}

/// Noise model and key classification for [`diff`].
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Maximum allowed power-of-two bucket distance for timing leaves
    /// (0 = exact bucket match required; default 1: within one
    /// power-of-two bucket of each other).
    pub tolerance_buckets: usize,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            tolerance_buckets: 1,
        }
    }
}

/// Which way a timing leaf is "better".
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
}

/// Classify a leaf key: `Some(direction)` for noisy timing leaves,
/// `None` for exact-match leaves.
fn timing_direction(key: &str) -> Option<Direction> {
    if key.contains("speedup") {
        Some(Direction::HigherIsBetter)
    } else if key.ends_with("_us") || key.ends_with("_ns") || key.ends_with("_ticks") {
        Some(Direction::LowerIsBetter)
    } else {
        None
    }
}

/// A timing value on the bucket scale. Floats (speedups) are scaled to
/// per-mille so sub-integer ratios still land in distinct buckets.
fn bucket_value(v: &Json) -> Option<u64> {
    match v {
        Json::Int(n) => u64::try_from(*n).ok(),
        Json::Num(f) if f.is_finite() && *f >= 0.0 => Some((f * 1000.0).round() as u64),
        _ => None,
    }
}

fn leaf_key(path: &str) -> &str {
    path.rsplit(['.', ']']).next().unwrap_or(path)
}

/// The identity fields used to match array entries across runs.
/// `size` disambiguates sweeps that revisit a workload at several
/// problem sizes (the symbolic explore rows).
const IDENTITY_FIELDS: [&str; 5] = ["workload", "pi_bound", "size", "points", "reps"];

fn entry_identity(v: &Json) -> Option<String> {
    let obj = v.as_obj()?;
    let mut parts = Vec::new();
    for f in IDENTITY_FIELDS {
        if let Some(val) = obj.iter().find(|(k, _)| k == f).map(|(_, v)| v) {
            parts.push(format!("{}={}", f, render_leaf(val)));
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

fn render_leaf(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

impl DiffReport {
    /// `true` when any finding should fail a gate (regressions, drift,
    /// or shape changes — improvements never fail).
    pub fn has_regressions(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.kind != FindingKind::Improvement)
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("compared", Json::from(self.compared)),
            ("regressions", Json::from(self.has_regressions())),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("path", Json::from(f.path.as_str())),
                                ("kind", Json::from(f.kind.label())),
                                ("old", Json::from(f.old.as_str())),
                                ("new", Json::from(f.new.as_str())),
                                ("detail", Json::from(f.detail.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A fixed-width human table of the findings (empty string when
    /// nothing differed).
    pub fn render_table(&self) -> String {
        if self.findings.is_empty() {
            return String::new();
        }
        let headers = ["kind", "path", "old", "new", "detail"];
        let rows: Vec<[String; 5]> = self
            .findings
            .iter()
            .map(|f| {
                [
                    f.kind.label().to_string(),
                    f.path.clone(),
                    f.old.clone(),
                    f.new.clone(),
                    f.detail.clone(),
                ]
            })
            .collect();
        let mut widths = headers.map(str::len);
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: [&str; 5]| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..w {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, headers);
        line(
            &mut out,
            [
                "-".repeat(widths[0]).as_str(),
                "-".repeat(widths[1]).as_str(),
                "-".repeat(widths[2]).as_str(),
                "-".repeat(widths[3]).as_str(),
                "-".repeat(widths[4]).as_str(),
            ],
        );
        for row in &rows {
            line(&mut out, [&row[0], &row[1], &row[2], &row[3], &row[4]]);
        }
        out
    }
}

/// Compare two documents. `old` is the baseline (e.g. the committed
/// BENCH file), `new` the candidate.
pub fn diff(old: &Json, new: &Json, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    diff_value(old, new, "", opts, &mut report);
    report
}

fn push(
    report: &mut DiffReport,
    path: &str,
    kind: FindingKind,
    old: &Json,
    new: &Json,
    detail: String,
) {
    report.findings.push(Finding {
        path: path.to_string(),
        kind,
        old: render_leaf(old),
        new: render_leaf(new),
        detail,
    });
}

fn diff_value(old: &Json, new: &Json, path: &str, opts: &DiffOptions, report: &mut DiffReport) {
    match (old, new) {
        (Json::Obj(a), Json::Obj(b)) => {
            for (k, ov) in a {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match b.iter().find(|(bk, _)| bk == k) {
                    Some((_, nv)) => diff_value(ov, nv, &child, opts, report),
                    None => push(
                        report,
                        &child,
                        FindingKind::Shape,
                        ov,
                        &Json::Null,
                        "key missing in new document".to_string(),
                    ),
                }
            }
            for (k, nv) in b {
                if !a.iter().any(|(ak, _)| ak == k) {
                    let child = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    push(
                        report,
                        &child,
                        FindingKind::Shape,
                        &Json::Null,
                        nv,
                        "key missing in old document".to_string(),
                    );
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => diff_arrays(a, b, path, opts, report),
        (a, b) => diff_leaf(a, b, path, opts, report),
    }
}

fn diff_arrays(a: &[Json], b: &[Json], path: &str, opts: &DiffOptions, report: &mut DiffReport) {
    let a_ids: Vec<Option<String>> = a.iter().map(entry_identity).collect();
    let by_identity = !a.is_empty() && a_ids.iter().all(Option::is_some);
    if by_identity {
        for (ov, id) in a.iter().zip(&a_ids) {
            let id = id.as_deref().unwrap();
            let child = format!("{path}[{id}]");
            match b
                .iter()
                .find(|nv| entry_identity(nv).as_deref() == Some(id))
            {
                Some(nv) => diff_value(ov, nv, &child, opts, report),
                None => push(
                    report,
                    &child,
                    FindingKind::Shape,
                    ov,
                    &Json::Null,
                    "entry missing in new document".to_string(),
                ),
            }
        }
        for nv in b {
            let id = entry_identity(nv);
            let missing = match &id {
                Some(id) => !a_ids.iter().any(|a| a.as_deref() == Some(id.as_str())),
                None => true,
            };
            if missing {
                let child = format!("{path}[{}]", id.as_deref().unwrap_or("?"));
                push(
                    report,
                    &child,
                    FindingKind::Shape,
                    &Json::Null,
                    nv,
                    "entry missing in old document".to_string(),
                );
            }
        }
    } else {
        if a.len() != b.len() {
            push(
                report,
                path,
                FindingKind::Shape,
                &Json::from(a.len()),
                &Json::from(b.len()),
                "array length changed".to_string(),
            );
        }
        for (i, (ov, nv)) in a.iter().zip(b).enumerate() {
            diff_value(ov, nv, &format!("{path}[{i}]"), opts, report);
        }
    }
}

fn diff_leaf(old: &Json, new: &Json, path: &str, opts: &DiffOptions, report: &mut DiffReport) {
    report.compared += 1;
    if old == new {
        return;
    }
    let key = leaf_key(path);
    if let Some(dir) = timing_direction(key) {
        if let (Some(ov), Some(nv)) = (bucket_value(old), bucket_value(new)) {
            let (ob, nb) = (Histogram::bucket_index(ov), Histogram::bucket_index(nv));
            let dist = ob.abs_diff(nb);
            if dist <= opts.tolerance_buckets {
                return; // Within noise.
            }
            let worse = match dir {
                Direction::LowerIsBetter => nb > ob,
                Direction::HigherIsBetter => nb < ob,
            };
            let kind = if worse {
                FindingKind::Regression
            } else {
                FindingKind::Improvement
            };
            push(
                report,
                path,
                kind,
                old,
                new,
                format!(
                    "bucket {ob} -> {nb} ({dist} apart, tolerance {})",
                    opts.tolerance_buckets
                ),
            );
            return;
        }
        // Fall through: non-numeric timing leaf → shape change.
        push(
            report,
            path,
            FindingKind::Shape,
            old,
            new,
            "timing leaf changed type".to_string(),
        );
        return;
    }
    let kind = if std::mem::discriminant(old) == std::mem::discriminant(new) {
        FindingKind::Drift
    } else {
        FindingKind::Shape
    };
    push(
        report,
        path,
        kind,
        old,
        new,
        "exact-match leaf changed".to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(explore_us: u64, candidates: u64) -> Json {
        Json::obj(vec![
            ("bench", Json::from("explore")),
            (
                "entries",
                Json::Arr(vec![Json::obj(vec![
                    ("workload", Json::from("matvec")),
                    ("pi_bound", Json::from(2u64)),
                    ("candidates", Json::from(candidates)),
                    ("explore_us", Json::from(explore_us)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(1000, 42);
        let r = diff(&d, &d, &DiffOptions::default());
        assert!(r.findings.is_empty());
        assert!(!r.has_regressions());
        assert!(r.compared > 0);
        assert_eq!(r.render_table(), "");
    }

    #[test]
    fn timing_noise_within_tolerance_is_ignored() {
        // 1000 → 1900: bucket 10 → 11, distance 1 ≤ tolerance 1.
        let r = diff(&doc(1000, 42), &doc(1900, 42), &DiffOptions::default());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn seeded_regression_is_flagged() {
        // 10× slower: bucket distance > 1 → regression.
        let r = diff(&doc(1000, 42), &doc(10_000, 42), &DiffOptions::default());
        assert!(r.has_regressions());
        assert_eq!(r.findings.len(), 1);
        let f = &r.findings[0];
        assert_eq!(f.kind, FindingKind::Regression);
        assert!(f.path.contains("workload=matvec"), "{}", f.path);
        assert!(f.path.ends_with("explore_us"));
        assert!(r.render_table().contains("REGRESSION"));
    }

    #[test]
    fn big_speedup_drop_is_a_regression_and_gain_is_not() {
        let mk = |s: f64| Json::obj(vec![("speedup", Json::from(s))]);
        // 4.0 → 0.9: per-mille 4000 (bucket 12) vs 900 (bucket 10).
        let r = diff(&mk(4.0), &mk(0.9), &DiffOptions::default());
        assert!(r.has_regressions());
        assert_eq!(r.findings[0].kind, FindingKind::Regression);
        // The reverse direction is an improvement, which never gates.
        let r = diff(&mk(0.9), &mk(4.0), &DiffOptions::default());
        assert!(!r.has_regressions());
        assert_eq!(r.findings[0].kind, FindingKind::Improvement);
    }

    #[test]
    fn non_timing_drift_and_shape_changes_gate() {
        let r = diff(&doc(1000, 42), &doc(1000, 43), &DiffOptions::default());
        assert!(r.has_regressions());
        assert_eq!(r.findings[0].kind, FindingKind::Drift);
        assert!(r.findings[0].path.ends_with("candidates"));

        // Dropping an entry is a shape finding even though arrays are
        // identity-matched.
        let empty = Json::obj(vec![
            ("bench", Json::from("explore")),
            ("entries", Json::Arr(vec![])),
        ]);
        let r = diff(&doc(1000, 42), &empty, &DiffOptions::default());
        assert!(r.findings.iter().any(|f| f.kind == FindingKind::Shape));
    }

    #[test]
    fn entry_reordering_is_not_a_finding() {
        let entry = |w: &str, us: u64| {
            Json::obj(vec![
                ("workload", Json::from(w)),
                ("explore_us", Json::from(us)),
            ])
        };
        let a = Json::obj(vec![(
            "entries",
            Json::Arr(vec![entry("matvec", 100), entry("sor", 200)]),
        )]);
        let b = Json::obj(vec![(
            "entries",
            Json::Arr(vec![entry("sor", 200), entry("matvec", 100)]),
        )]);
        let r = diff(&a, &b, &DiffOptions::default());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn tolerance_zero_requires_exact_buckets() {
        let opts = DiffOptions {
            tolerance_buckets: 0,
        };
        let r = diff(&doc(1000, 42), &doc(1900, 42), &opts);
        assert!(r.has_regressions());
    }

    #[test]
    fn json_report_shape() {
        let r = diff(&doc(1000, 42), &doc(10_000, 42), &DiffOptions::default());
        let j = r.to_json();
        assert_eq!(j.get("regressions"), Some(&Json::Bool(true)));
        assert_eq!(
            j.get("findings")
                .unwrap()
                .idx(0)
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("REGRESSION")
        );
    }
}
