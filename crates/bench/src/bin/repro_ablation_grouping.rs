//! A2 — ablation: the effect of the grouping-vector choice (Algorithm 1
//! Step 1 allows an arbitrary maximizer) on group count and interblock
//! communication.

use loom_core::report::Table;
use loom_hyperplane::TimeFn;
use loom_partition::comm::{comm_stats, group_dependence_graph};
use loom_partition::{partition, PartitionConfig};

fn main() {
    println!("Ablation A2 — grouping-vector choice on 6×6×6 matmul, Π = (1,1,1)\n");
    let w = loom_workloads::matmul::workload(6);
    let deps = w.verified_deps();
    let names = ["d_C=(0,0,1)", "d_A=(0,1,0)", "d_B=(1,0,0)"];

    let mut t = Table::new([
        "grouping vector",
        "groups",
        "largest block",
        "interblock arcs",
        "max out-degree",
    ]);
    for (choice, name) in names.iter().enumerate() {
        let p = partition(
            w.nest.space().clone(),
            deps.clone(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig {
                grouping_choice: Some(choice),
                seed: None,
            },
        )
        .expect("matmul partitions");
        let stats = comm_stats(&p);
        let graph = group_dependence_graph(&p);
        let max_out = graph.iter().map(|s| s.len()).max().unwrap_or(0);
        assert!(
            loom_partition::laws::check_all(&p).is_empty(),
            "law violation with choice {choice}"
        );
        t.row([
            name.to_string(),
            format!("{}", p.num_blocks()),
            format!("{}", p.max_block_size()),
            format!("{}", stats.interblock_arcs),
            format!("{max_out}"),
        ]);
    }
    println!("{t}");

    // Second axis: how much does grouping help at all? Compare against
    // one-line-per-block (no grouping, r = 1 equivalent).
    println!("grouping vs no grouping (each projection line its own block):");
    let p = partition(
        w.nest.space().clone(),
        deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let grouped = comm_stats(&p);
    // No-grouping reference: count arcs crossing projection lines.
    let qp = p.projected();
    let mut crossing = 0usize;
    let mut total = 0usize;
    for pid in 0..p.structure().len() {
        for (succ, _) in p.structure().successors(pid) {
            total += 1;
            let line_of = |id: usize| {
                (0..qp.len())
                    .find(|&l| qp.line_members(l).contains(&id))
                    .unwrap()
            };
            if line_of(pid) != line_of(succ) {
                crossing += 1;
            }
        }
    }
    println!(
        "  grouped (Algorithm 1): {} / {} arcs interblock",
        grouped.interblock_arcs, grouped.total_arcs
    );
    println!("  ungrouped lines:       {crossing} / {total} arcs cross lines");
    assert!(grouped.interblock_arcs < crossing);
    println!("\nexpected shape: symmetric choices give symmetric results; grouping\nremoves the arcs along the grouping vector (the r-sized merge).");
}
