//! Numerical execution of loop nests — the reproduction's end-to-end
//! *correctness* check.
//!
//! The partitioning and mapping machinery reorders iterations across
//! processors; the only ground truth that matters is that the reordered
//! execution computes **exactly** the values the original sequential
//! loop computes. This crate provides:
//!
//! * [`memory::Memory`] — a sparse array store keyed by
//!   `(array, element)`,
//! * [`oracle`] — the sequential interpreter (lexicographic iteration
//!   order, the semantics of the source loop),
//! * [`ordered`] — execution in an arbitrary total order (a hyperplane
//!   schedule front order, or the start-time order of a simulator
//!   trace), with dependence-order validation,
//! * [`ordered::equivalent`] — exact comparison of two executions.
//!
//! Because every array element has a unique writer *sequence* fixed by
//! the dependence relation, any dependence-respecting order produces
//! bit-identical floating-point results — asserted, not assumed, by the
//! tests here and in `tests-int`.
//!
//! ```
//! use loom_exec::{equivalent, execute_in_order, schedule_order, sequential};
//! use loom_exec::memory::address_hash_init;
//! use loom_hyperplane::{Schedule, TimeFn};
//!
//! let w = loom_workloads::matvec::workload(6);
//! let serial = sequential(&w.nest, &address_hash_init);
//! // Re-execute in hyperplane front order: bit-identical.
//! let points: Vec<_> = w.nest.space().points().collect();
//! let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
//! let order = schedule_order(&points, &sched);
//! let par = execute_in_order(&w.nest, &points, &order, &w.verified_deps(),
//!                            &address_hash_init).unwrap();
//! assert_eq!(equivalent(&par, &serial), Ok(()));
//! ```

#![deny(missing_docs)]

pub mod memory;
pub mod oracle;
pub mod ordered;

pub use memory::Memory;
pub use oracle::sequential;
pub use ordered::{equivalent, execute_in_order, schedule_order, trace_order, Divergence};
