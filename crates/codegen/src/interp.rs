//! A blocking message-passing interpreter for generated SPMD programs.
//!
//! Each processor owns a private [`Memory`]; messages are matched by
//! tag; receives block. The scheduler is deterministic round-robin with
//! run-to-block semantics, so a run either completes identically every
//! time or reports the same deadlock.

use crate::gen::{Codegen, PayloadSpec};
use crate::ops::{Op, Tag};
use loom_exec::memory::{Element, Memory};
use loom_loopir::LoopNest;
use std::collections::HashMap;

/// Interpreter failure.
#[derive(Clone, Debug, PartialEq)]
pub enum InterpError {
    /// No processor can make progress; lists each blocked processor and
    /// the tag it waits for.
    Deadlock {
        /// `(processor, tag waited on)` for every blocked processor.
        blocked: Vec<(u32, Tag)>,
    },
    /// A `Compute` op referenced an out-of-range point id.
    BadPoint {
        /// The offending id.
        id: u32,
    },
    /// A replayed schedule ([`run_schedule`]) named a processor that
    /// does not exist or has no ops left at that step.
    BadSchedule {
        /// Index into the schedule where replay failed.
        at: usize,
    },
    /// A replayed schedule ended before every processor finished.
    IncompleteSchedule {
        /// The first unfinished processor.
        proc: u32,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Deadlock { blocked } => {
                write!(f, "SPMD deadlock; blocked: {blocked:?}")
            }
            InterpError::BadPoint { id } => write!(f, "compute of unknown point {id}"),
            InterpError::BadSchedule { at } => {
                write!(f, "schedule step {at} names a processor with no op to run")
            }
            InterpError::IncompleteSchedule { proc } => {
                write!(f, "schedule ended before P{proc} finished")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Each processor's private memory after completion.
    pub memories: Vec<Memory>,
    /// The global result: every element taken from the processor that
    /// performed the globally last write to it.
    pub gathered: Memory,
    /// Messages delivered.
    pub messages: u64,
    /// Element values transferred.
    pub words: u64,
}

/// A transferred element: address, value, and — for values the source
/// itself wrote — the id of the writing iteration. The writer id makes
/// installation order-independent: a processor keeps, per element, the
/// version from the *sequentially latest* writer, so when several
/// accumulation dependences deliver the same element (e.g. conv2d's
/// `y` along both `(0,0,1,0)` and `(0,0,0,1)`), a staler copy arriving
/// later can never clobber a newer one. Forwarded *reads* (reuse chains
/// of in-nest-read-only arrays) carry no writer and are installed only
/// into absent slots.
pub type PayloadItem = (Element, f64, Option<u32>);

/// Evaluate the payload of a message for dependence `dep` produced at
/// iteration `src` (point id `src_id`) on processor memory `mem`.
pub(crate) fn payload(
    nest: &LoopNest,
    specs: &[PayloadSpec],
    point: &[i64],
    src_id: u32,
    mem: &Memory,
    init: &dyn Fn(&str, &[i64]) -> f64,
) -> Vec<PayloadItem> {
    let mut out = Vec::new();
    for spec in specs {
        match spec {
            PayloadSpec::Write { stmt } => {
                let w = nest.stmts()[*stmt].write();
                let e = w.element_at(point);
                let v = mem.read(w.array(), &e, init);
                out.push(((w.array().to_string(), e), v, Some(src_id)));
            }
            PayloadSpec::Reads { stmt, array } => {
                for r in nest.stmts()[*stmt].reads() {
                    if r.array() == array {
                        let e = r.element_at(point);
                        let v = mem.read(array, &e, init);
                        out.push(((array.clone(), e), v, None));
                    }
                }
            }
        }
    }
    out
}

/// Install received items into a processor's memory under the version
/// rule (see [`PayloadItem`]).
pub(crate) fn install(
    mem: &mut Memory,
    versions: &mut HashMap<Element, u32>,
    items: Vec<PayloadItem>,
) {
    for ((array, element), v, writer) in items {
        let key = (array, element);
        match writer {
            Some(w) => {
                if versions.get(&key).is_none_or(|&cur| cur < w) {
                    mem.write(&key.0, key.1.clone(), v);
                    versions.insert(key, w);
                }
            }
            None => {
                if mem.get(&key.0, &key.1).is_none() {
                    mem.write(&key.0, key.1, v);
                }
            }
        }
    }
}

/// Record the writes one computed iteration performs, for versioning.
pub(crate) fn record_local_writes(
    nest: &LoopNest,
    point: &[i64],
    id: u32,
    versions: &mut HashMap<Element, u32>,
) {
    for stmt in nest.stmts() {
        let key = (
            stmt.write().array().to_string(),
            stmt.write().element_at(point),
        );
        versions.insert(key, id);
    }
}

/// Execute one iteration's statements against a processor's memory.
fn compute(nest: &LoopNest, point: &[i64], mem: &mut Memory, init: &dyn Fn(&str, &[i64]) -> f64) {
    for stmt in nest.stmts() {
        let reads: Vec<f64> = stmt
            .reads()
            .iter()
            .map(|r| mem.read(r.array(), &r.element_at(point), init))
            .collect();
        let value = stmt.semantics().eval(&reads);
        mem.write(stmt.write().array(), stmt.write().element_at(point), value);
    }
}

/// The mutable machine state one run threads through [`exec_op`].
struct RunState {
    memories: Vec<Memory>,
    versions: Vec<HashMap<Element, u32>>,
    pcs: Vec<usize>,
    /// Mailbox keyed by (destination proc, tag).
    mailbox: HashMap<(u32, Tag), Vec<PayloadItem>>,
    messages: u64,
    words: u64,
}

impl RunState {
    fn new(n_procs: usize) -> RunState {
        RunState {
            memories: vec![Memory::new(); n_procs],
            versions: vec![HashMap::new(); n_procs],
            pcs: vec![0; n_procs],
            mailbox: HashMap::new(),
            messages: 0,
            words: 0,
        }
    }
}

/// Execute processor `p`'s next op. `Ok(true)` means progress was
/// made; `Ok(false)` means `p` is blocked on an unsatisfied `Recv`.
fn exec_op(
    nest: &LoopNest,
    cg: &Codegen,
    st: &mut RunState,
    p: usize,
    init: &dyn Fn(&str, &[i64]) -> f64,
) -> Result<bool, InterpError> {
    let prog = &cg.program;
    match &prog.per_proc[p][st.pcs[p]] {
        Op::Recv { from: _, tag } => {
            let Some(items) = st.mailbox.remove(&(p as u32, *tag)) else {
                return Ok(false); // blocked
            };
            install(&mut st.memories[p], &mut st.versions[p], items);
        }
        Op::Compute { point } => {
            let id = *point as usize;
            if id >= prog.points.len() {
                return Err(InterpError::BadPoint { id: *point });
            }
            let pt = prog.points[id].clone();
            compute(nest, &pt, &mut st.memories[p], init);
            record_local_writes(nest, &pt, *point, &mut st.versions[p]);
        }
        Op::Send { to, tag } => {
            let id = tag.src_point as usize;
            if id >= prog.points.len() {
                return Err(InterpError::BadPoint { id: tag.src_point });
            }
            let pt = prog.points[id].clone();
            let specs = cg
                .payload_specs
                .get(tag.dep as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let items = payload(nest, specs, &pt, tag.src_point, &st.memories[p], init);
            st.messages += 1;
            st.words += items.len() as u64;
            st.mailbox.insert((*to, *tag), items);
        }
    }
    st.pcs[p] += 1;
    Ok(true)
}

/// Gather the global result: every element taken from the processor
/// that performed the globally last (sequential-order) write to it.
fn gather(nest: &LoopNest, prog: &crate::ops::SpmdProgram, memories: &[Memory]) -> Memory {
    let mut proc_of_point = vec![0u32; prog.points.len()];
    for (p, ops) in prog.per_proc.iter().enumerate() {
        for op in ops {
            if let Op::Compute { point } = op {
                if (*point as usize) < proc_of_point.len() {
                    proc_of_point[*point as usize] = p as u32;
                }
            }
        }
    }
    let mut last_writer: HashMap<Element, u32> = HashMap::new();
    for (id, pt) in prog.points.iter().enumerate() {
        for stmt in nest.stmts() {
            let e = (
                stmt.write().array().to_string(),
                stmt.write().element_at(pt),
            );
            last_writer.insert(e, proc_of_point[id]);
        }
    }
    let mut gathered = Memory::new();
    for ((array, element), owner) in last_writer {
        if let Some(v) = memories[owner as usize].get(&array, &element) {
            gathered.write(&array, element, v);
        }
    }
    gathered
}

/// Run a generated SPMD program to completion.
pub fn run(
    nest: &LoopNest,
    cg: &Codegen,
    init: &dyn Fn(&str, &[i64]) -> f64,
) -> Result<RunResult, InterpError> {
    let prog = &cg.program;
    let n_procs = prog.num_procs();
    let mut st = RunState::new(n_procs);

    loop {
        let mut progress = false;
        let mut all_done = true;
        for p in 0..n_procs {
            let ops = &prog.per_proc[p];
            while st.pcs[p] < ops.len() {
                if !exec_op(nest, cg, &mut st, p, init)? {
                    break; // blocked
                }
                progress = true;
            }
            if st.pcs[p] < ops.len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        if !progress {
            let blocked = (0..n_procs)
                .filter(|&p| st.pcs[p] < prog.per_proc[p].len())
                .map(|p| match prog.per_proc[p][st.pcs[p]] {
                    Op::Recv { tag, .. } => (p as u32, tag),
                    _ => unreachable!("only receives block"),
                })
                .collect();
            return Err(InterpError::Deadlock { blocked });
        }
    }

    let gathered = gather(nest, prog, &st.memories);
    Ok(RunResult {
        memories: st.memories,
        gathered,
        messages: st.messages,
        words: st.words,
    })
}

/// Run a generated SPMD program under an explicit global op order:
/// `schedule[k]` names the processor whose next op executes at step
/// `k`. Mailbox matching, payload versioning, and the final gather are
/// identical to [`run`] — only the interleaving differs. This is the
/// replay hook the interleaving engine (`loom-check` rule `LC014`)
/// uses to compare the final memory state across explored schedules
/// and against the sequential oracle.
///
/// Errors: [`InterpError::Deadlock`] if a scheduled `Recv` has no
/// message, [`InterpError::BadSchedule`] if a step names a processor
/// with nothing left to run, and [`InterpError::IncompleteSchedule`]
/// if the schedule ends early.
pub fn run_schedule(
    nest: &LoopNest,
    cg: &Codegen,
    schedule: &[u32],
    init: &dyn Fn(&str, &[i64]) -> f64,
) -> Result<RunResult, InterpError> {
    let prog = &cg.program;
    let n_procs = prog.num_procs();
    let mut st = RunState::new(n_procs);
    for (at, &proc) in schedule.iter().enumerate() {
        let p = proc as usize;
        if p >= n_procs || st.pcs[p] >= prog.per_proc[p].len() {
            return Err(InterpError::BadSchedule { at });
        }
        if !exec_op(nest, cg, &mut st, p, init)? {
            let tag = match prog.per_proc[p][st.pcs[p]] {
                Op::Recv { tag, .. } => tag,
                _ => unreachable!("only receives block"),
            };
            return Err(InterpError::Deadlock {
                blocked: vec![(proc, tag)],
            });
        }
    }
    if let Some(p) = (0..n_procs).find(|&p| st.pcs[p] < prog.per_proc[p].len()) {
        return Err(InterpError::IncompleteSchedule { proc: p as u32 });
    }
    let gathered = gather(nest, prog, &st.memories);
    Ok(RunResult {
        memories: st.memories,
        gathered,
        messages: st.messages,
        words: st.words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use loom_exec::memory::address_hash_init;
    use loom_exec::{equivalent, sequential};
    use loom_hyperplane::TimeFn;
    use loom_partition::{partition, PartitionConfig};

    fn check_workload(w: &loom_workloads::Workload, assignment: &[usize], procs: usize) {
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        assert_eq!(assignment.len(), p.num_blocks(), "{}", w.nest.name());
        let cg = generate(&w.nest, &p, assignment, procs).expect("codegen-able");
        let result = run(&w.nest, &cg, &address_hash_init)
            .unwrap_or_else(|e| panic!("{}: {e}", w.nest.name()));
        let serial = sequential(&w.nest, &address_hash_init);
        assert_eq!(
            equivalent(&result.gathered, &serial),
            Ok(()),
            "{} diverged",
            w.nest.name()
        );
    }

    #[test]
    fn l1_spmd_matches_oracle() {
        let w = loom_workloads::l1::workload(4);
        check_workload(&w, &[0, 1, 1, 0], 2);
    }

    #[test]
    fn matvec_spmd_matches_oracle() {
        let w = loom_workloads::matvec::workload(8);
        // 8 blocks onto 4 procs round-robin (worst-case scatter).
        let assignment: Vec<usize> = (0..8).map(|b| b % 4).collect();
        check_workload(&w, &assignment, 4);
    }

    #[test]
    fn matmul_spmd_matches_oracle() {
        let w = loom_workloads::matmul::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 4).collect();
        let cg = generate(&w.nest, &p, &assignment, 4).unwrap();
        let result = run(&w.nest, &cg, &address_hash_init).unwrap();
        let serial = sequential(&w.nest, &address_hash_init);
        assert_eq!(equivalent(&result.gathered, &serial), Ok(()));
        assert!(result.messages > 0);
        assert!(result.words >= result.messages);
    }

    #[test]
    fn deadlock_detected_on_corrupted_program() {
        // Remove one Send from a valid program: its Recv must block and
        // be reported.
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let mut cg = generate(&w.nest, &p, &[0, 1, 1, 0], 2).unwrap();
        for ops in &mut cg.program.per_proc {
            if let Some(pos) = ops.iter().position(|o| matches!(o, Op::Send { .. })) {
                ops.remove(pos);
                break;
            }
        }
        let err = run(&w.nest, &cg, &|_, _| 0.0).unwrap_err();
        assert!(matches!(err, InterpError::Deadlock { .. }));
    }

    #[test]
    fn replayed_schedule_matches_free_run() {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let cg = generate(&w.nest, &p, &[0, 1, 1, 0], 2).unwrap();
        // The round-robin run-to-block order, replayed explicitly, must
        // reproduce the free run bit for bit.
        let mut schedule = Vec::new();
        {
            let prog = &cg.program;
            let mut pcs = vec![0usize; prog.num_procs()];
            let mut mailbox = std::collections::HashSet::new();
            loop {
                let mut progress = false;
                #[allow(clippy::needless_range_loop)] // pcs and per_proc walk in lockstep
                for p in 0..prog.num_procs() {
                    while pcs[p] < prog.per_proc[p].len() {
                        match prog.per_proc[p][pcs[p]] {
                            Op::Recv { tag, .. } => {
                                if !mailbox.remove(&(p as u32, tag)) {
                                    break;
                                }
                            }
                            Op::Send { to, tag } => {
                                mailbox.insert((to, tag));
                            }
                            Op::Compute { .. } => {}
                        }
                        schedule.push(p as u32);
                        pcs[p] += 1;
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
        }
        let free = run(&w.nest, &cg, &address_hash_init).unwrap();
        let replayed = run_schedule(&w.nest, &cg, &schedule, &address_hash_init).unwrap();
        assert_eq!(equivalent(&replayed.gathered, &free.gathered), Ok(()));
        assert_eq!(replayed.messages, free.messages);
    }

    #[test]
    fn bad_schedules_are_rejected() {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let cg = generate(&w.nest, &p, &[0, 1, 1, 0], 2).unwrap();
        // Too short: every processor still has ops. Schedule one
        // non-blocking op so the failure is the early end, not a
        // blocked recv.
        let p0 = (0..cg.program.num_procs())
            .find(|&p| !matches!(cg.program.per_proc[p].first(), Some(Op::Recv { .. })))
            .expect("some processor starts unblocked") as u32;
        assert!(matches!(
            run_schedule(&w.nest, &cg, &[p0], &address_hash_init),
            Err(InterpError::IncompleteSchedule { .. })
        ));
        // Nonexistent processor.
        assert!(matches!(
            run_schedule(&w.nest, &cg, &[9], &address_hash_init),
            Err(InterpError::BadSchedule { at: 0 })
        ));
    }

    #[test]
    fn single_proc_trivially_correct() {
        let w = loom_workloads::sor::workload(5, 5);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let cg = generate(&w.nest, &p, &vec![0; p.num_blocks()], 1).unwrap();
        let result = run(&w.nest, &cg, &address_hash_init).unwrap();
        assert_eq!(result.messages, 0);
        let serial = sequential(&w.nest, &address_hash_init);
        assert_eq!(equivalent(&result.gathered, &serial), Ok(()));
    }
}
