//! The sparse array store executions write into.

use std::collections::BTreeMap;

/// One array element's address: the array name and its subscript tuple.
pub type Element = (String, Vec<i64>);

/// A sparse, deterministic-iteration store of array element values.
///
/// Elements never written retain their *initial* value, supplied at
/// execution time by an init function (so boundary reads like `A[0, j]`
/// in a nest writing `A[i+1, j+1]` are well-defined).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Memory {
    cells: BTreeMap<Element, f64>,
}

impl Memory {
    /// An empty store.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Read an element, falling back to `init` when unwritten.
    pub fn read(&self, array: &str, element: &[i64], init: &dyn Fn(&str, &[i64]) -> f64) -> f64 {
        match self.cells.get(&(array.to_string(), element.to_vec())) {
            Some(&v) => v,
            None => init(array, element),
        }
    }

    /// Write an element.
    pub fn write(&mut self, array: &str, element: Vec<i64>, value: f64) {
        self.cells.insert((array.to_string(), element), value);
    }

    /// Number of written elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate over written elements in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Element, &f64)> {
        self.cells.iter()
    }

    /// The value of a written element, if present.
    pub fn get(&self, array: &str, element: &[i64]) -> Option<f64> {
        self.cells
            .get(&(array.to_string(), element.to_vec()))
            .copied()
    }

    /// A deterministic FNV-1a digest of the whole store (addresses and
    /// exact value bits, in `BTreeMap` order). Two memories digest
    /// equal iff they hold bit-identical contents, so oracle consumers
    /// — e.g. the interleaving determinacy check comparing many
    /// replayed schedules — can compare states in O(1) after one pass
    /// and only fall back to [`crate::equivalent`] to render the
    /// divergence.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for ((array, element), &v) in &self.cells {
            eat(array.as_bytes());
            eat(&[0xff]);
            for &x in element {
                eat(&x.to_le_bytes());
            }
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }
}

/// A common init function: every unwritten element of every array reads
/// as a deterministic pseudo-value derived from its address, so
/// divergences cannot hide behind uniform zeros.
pub fn address_hash_init(array: &str, element: &[i64]) -> f64 {
    let mut h: i64 = array.bytes().map(|b| b as i64).sum::<i64>();
    for (k, &x) in element.iter().enumerate() {
        h = h
            .wrapping_mul(31)
            .wrapping_add(x.wrapping_mul(k as i64 + 7));
    }
    // Map into a small well-conditioned range.
    ((h.rem_euclid(1009)) as f64) / 64.0 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new();
        let zero = |_: &str, _: &[i64]| 0.0;
        assert_eq!(m.read("A", &[1, 2], &zero), 0.0);
        m.write("A", vec![1, 2], 5.5);
        assert_eq!(m.read("A", &[1, 2], &zero), 5.5);
        assert_eq!(m.get("A", &[1, 2]), Some(5.5));
        assert_eq!(m.get("A", &[0, 0]), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn arrays_are_distinct_namespaces() {
        let mut m = Memory::new();
        m.write("A", vec![0], 1.0);
        m.write("B", vec![0], 2.0);
        assert_eq!(m.get("A", &[0]), Some(1.0));
        assert_eq!(m.get("B", &[0]), Some(2.0));
    }

    #[test]
    fn digest_separates_and_matches() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.digest(), b.digest());
        a.write("A", vec![1], 2.0);
        assert_ne!(a.digest(), b.digest());
        b.write("A", vec![1], 2.0);
        assert_eq!(a.digest(), b.digest());
        // Same bits, different address → different digest.
        let mut c = Memory::new();
        c.write("A", vec![2], 2.0);
        assert_ne!(a.digest(), c.digest());
        // -0.0 and 0.0 differ bitwise and must not collide.
        let mut z1 = Memory::new();
        let mut z2 = Memory::new();
        z1.write("A", vec![0], 0.0);
        z2.write("A", vec![0], -0.0);
        assert_ne!(z1.digest(), z2.digest());
    }

    #[test]
    fn address_hash_init_is_deterministic_and_varied() {
        let a = address_hash_init("A", &[1, 2]);
        assert_eq!(a, address_hash_init("A", &[1, 2]));
        assert_ne!(a, address_hash_init("A", &[2, 1]));
        assert_ne!(a, address_hash_init("B", &[1, 2]));
        assert!(a >= 1.0);
    }
}
