//! Uniform (constant) dependence extraction.
//!
//! For two accesses to the same array with subscripts `U·i + a` (source)
//! and `U·j + b` (sink), the iterations touching a common element satisfy
//! `U·(j − i) = a − b`. When the linear parts `U` agree, the solution set
//! is a coset of the integer nullspace lattice of `U`, so the dependence
//! *distances* are constant — exactly the "constant loop-carried
//! dependence" class the hyperplane method (and this paper) requires.
//!
//! The extractor returns, per conflicting access pair:
//!
//! * the particular solution `d₀` (normalized lexicographically positive) —
//!   a flow, anti, or output dependence, and
//! * one primitive generator per nullspace direction — the *reuse*
//!   dependences that the paper materializes by rewriting loops into
//!   single-assignment form (matmul's `(0,1,0)`, `(1,0,0)`, `(0,0,1)`).
//!
//! Accesses to the same array whose linear subscript parts differ are
//! outside the uniform class: a write/read pair then yields
//! [`Error::NonUniform`]; a read/read pair is skipped (reuse modelling is
//! an optimization, never a correctness requirement).

use crate::access::Access;
use crate::nest::LoopNest;
use crate::{Error, Point};
use loom_rational::int::gcd_all;
use loom_rational::intlinalg::{try_solve_integer, IMat};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// The classic dependence taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// True dependence: write, then read.
    Flow,
    /// Anti dependence: read, then write.
    Anti,
    /// Output dependence: write, then write.
    Output,
    /// Input reuse: read, then read of the same element (the paper's
    /// single-assignment propagation vectors).
    Input,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Input => "input",
        };
        write!(f, "{s}")
    }
}

/// A single extracted dependence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// The (lexicographically positive) constant dependence vector.
    pub vector: Point,
    /// Dependence class.
    pub kind: DepKind,
    /// Array through which the dependence flows.
    pub array: String,
    /// Index of the source statement in the nest body.
    pub src_stmt: usize,
    /// Index of the sink statement in the nest body.
    pub dst_stmt: usize,
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dep on `{}`: S{} -> S{} distance {:?}",
            self.kind, self.array, self.src_stmt, self.dst_stmt, self.vector
        )
    }
}

/// Extraction options.
#[derive(Clone, Copy, Debug)]
pub struct DepOptions {
    /// Include read-after-read reuse dependences (needed to reproduce the
    /// paper's dependence sets for matmul / matvec). Default `true`.
    pub include_input_reuse: bool,
    /// Include anti and output dependences. Default `true`.
    pub include_anti_output: bool,
    /// Include intra-iteration (zero-distance) dependences between
    /// *different* statements, ordered by textual position. These never
    /// enter the vector set `D` (a zero vector admits no legal Π) but
    /// drive statement-offset scheduling. Default `false`.
    pub include_intra: bool,
}

impl Default for DepOptions {
    fn default() -> DepOptions {
        DepOptions {
            include_input_reuse: true,
            include_anti_output: true,
            include_intra: false,
        }
    }
}

/// `-1`, `0`, `1` for lexicographic sign of a vector.
pub(crate) fn lex_sign(v: &[i64]) -> Ordering {
    for &x in v {
        match x.cmp(&0) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Divide by the gcd of the entries and flip to lexicographic-positive.
pub(crate) fn primitive_lex_positive(v: &[i64]) -> Option<Point> {
    let g = gcd_all(v);
    if g == 0 {
        return None;
    }
    let mut p: Point = v.iter().map(|&x| x / g).collect();
    if lex_sign(&p) == Ordering::Less {
        for x in &mut p {
            *x = -*x;
        }
    }
    Some(p)
}

/// The linear subscript parts of an access as a `rank × n` integer matrix.
fn linear_matrix(acc: &Access, n: usize) -> IMat {
    let rows: Vec<&[i64]> = acc.subscripts().iter().map(|s| s.coeffs()).collect();
    if rows.is_empty() {
        IMat::zero(0, n)
    } else {
        IMat::from_rows(&rows)
    }
}

fn offsets(acc: &Access) -> Vec<i64> {
    acc.subscripts().iter().map(|s| s.constant_term()).collect()
}

/// One occurrence of an array access inside a nest body: the statement
/// index, the access itself, and whether it is the statement's write.
pub type AccessSite<'a> = (usize, &'a Access, bool);

/// A write-involved access pair whose linear subscript parts differ —
/// outside the uniform class [`extract_dependences`] handles, and the
/// raw material the [`crate::uniformize`] pass folds into synthesized
/// constant vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonUniformPair {
    /// Array both accesses touch.
    pub array: String,
    /// The first access in program order.
    pub a: Access,
    /// Statement index of `a`.
    pub a_stmt: usize,
    /// Whether `a` is its statement's write.
    pub a_write: bool,
    /// The second access in program order.
    pub b: Access,
    /// Statement index of `b`.
    pub b_stmt: usize,
    /// Whether `b` is its statement's write.
    pub b_write: bool,
}

/// Gather every access per array, preserving program order (the raw
/// material both [`extract_dependences`] and the symbolic front-end
/// dependence analysis in `loom-check` scan pairwise). Arrays appear in
/// order of first occurrence.
pub fn accesses_by_array(nest: &LoopNest) -> Vec<(String, Vec<AccessSite<'_>>)> {
    let mut by_array: Vec<(String, Vec<AccessSite<'_>>)> = Vec::new();
    for (si, stmt) in nest.stmts().iter().enumerate() {
        for (acc, is_write) in
            std::iter::once((stmt.write(), true)).chain(stmt.reads().iter().map(|r| (r, false)))
        {
            match by_array.iter_mut().find(|(a, _)| a == acc.array()) {
                Some((_, v)) => v.push((si, acc, is_write)),
                None => by_array.push((acc.array().to_string(), vec![(si, acc, is_write)])),
            }
        }
    }
    by_array
}

/// Extract all uniform dependences of a loop nest.
///
/// The result is deterministic: dependences are sorted by array, then
/// kind, then vector.
pub fn extract_dependences(nest: &LoopNest, opts: DepOptions) -> Result<Vec<Dependence>, Error> {
    extract_with(nest, opts, &mut |pair| {
        Err(Error::NonUniform { array: pair.array })
    })
}

/// [`extract_dependences`] with the uniformity requirement relaxed:
/// write-involved access pairs whose linear subscript parts differ are
/// collected as [`NonUniformPair`]s (in extraction order) instead of
/// aborting, so the [`crate::uniformize`] pass can fold them. The
/// uniform pairs are extracted exactly as [`extract_dependences`] does,
/// and [`Error::Overflow`] still propagates.
pub fn extract_dependences_relaxed(
    nest: &LoopNest,
    opts: DepOptions,
) -> Result<(Vec<Dependence>, Vec<NonUniformPair>), Error> {
    let mut pairs = Vec::new();
    let deps = extract_with(nest, opts, &mut |pair| {
        pairs.push(pair);
        Ok(())
    })?;
    Ok((deps, pairs))
}

/// The shared pairwise scan: `on_nonuniform` decides whether a
/// non-uniform write pair aborts extraction (the strict entry point) or
/// is recorded and skipped (the relaxed one).
fn extract_with(
    nest: &LoopNest,
    opts: DepOptions,
    on_nonuniform: &mut dyn FnMut(NonUniformPair) -> Result<(), Error>,
) -> Result<Vec<Dependence>, Error> {
    let n = nest.dim();
    let by_array = accesses_by_array(nest);

    let mut out: Vec<Dependence> = Vec::new();
    for (array, accs) in &by_array {
        for (x, &(sx, ax, wx)) in accs.iter().enumerate() {
            for &(sy, ay, wy) in accs.iter().skip(x) {
                let any_write = wx || wy;
                if !any_write && !opts.include_input_reuse {
                    continue;
                }
                if !ax.same_linear_part(ay) {
                    if any_write {
                        on_nonuniform(NonUniformPair {
                            array: array.clone(),
                            a: Access::clone(ax),
                            a_stmt: sx,
                            a_write: wx,
                            b: Access::clone(ay),
                            b_stmt: sy,
                            b_write: wy,
                        })?;
                    }
                    continue; // read/read with different shapes: no reuse model
                }
                if ax.rank() == 0 {
                    continue; // scalar constants carry no loop dependence here
                }
                let u = linear_matrix(ax, n);
                // U·i_x + a_x = U·i_y + a_y  ⇒  U·(i_y − i_x) = a_x − a_y,
                // so a solution d is the distance from x's iteration to y's
                // (lex-positive d ⇒ access x executes first).
                let c: Vec<i64> = offsets(ax)
                    .iter()
                    .zip(offsets(ay))
                    .map(|(a, b)| a - b)
                    .collect();
                let solved = try_solve_integer(&u, &c).map_err(|_| Error::Overflow {
                    array: array.clone(),
                })?;
                let Some((d0, generators)) = solved else {
                    continue; // no integer solution: the accesses never conflict
                };

                // Zero-distance conflicts between distinct statements:
                // intra-iteration dependences, ordered textually.
                if any_write && opts.include_intra && lex_sign(&d0) == Ordering::Equal && sx != sy {
                    let (src, dst, kind) = if sx < sy {
                        (sx, sy, kind_of(wx, wy))
                    } else {
                        (sy, sx, kind_of(wy, wx))
                    };
                    if opts.include_anti_output || kind == DepKind::Flow {
                        out.push(Dependence {
                            vector: vec![0; n],
                            kind,
                            array: array.clone(),
                            src_stmt: src,
                            dst_stmt: dst,
                        });
                    }
                }

                // Particular vector → flow/anti/output between distinct roles.
                if any_write && lex_sign(&d0) != Ordering::Equal {
                    let (kind, vector, src, dst) = match lex_sign(&d0) {
                        Ordering::Greater => (kind_of(wx, wy), d0.clone(), sx, sy),
                        _ => (
                            kind_of(wy, wx),
                            d0.iter().map(|&v| -v).collect::<Point>(),
                            sy,
                            sx,
                        ),
                    };
                    if opts.include_anti_output || kind == DepKind::Flow {
                        out.push(Dependence {
                            vector,
                            kind,
                            array: array.clone(),
                            src_stmt: src,
                            dst_stmt: dst,
                        });
                    }
                }

                // Nullspace generators → reuse/output chains along which the
                // same element is touched repeatedly.
                for g in &generators {
                    let Some(vector) = primitive_lex_positive(g) else {
                        continue;
                    };
                    let kind = if wx && wy {
                        DepKind::Output
                    } else if any_write {
                        DepKind::Flow // write reused by later reads of itself
                    } else {
                        DepKind::Input
                    };
                    if !opts.include_anti_output && kind == DepKind::Output {
                        continue;
                    }
                    out.push(Dependence {
                        vector,
                        kind,
                        array: array.clone(),
                        src_stmt: sx.min(sy),
                        dst_stmt: sx.max(sy),
                    });
                }
            }
        }
    }

    // Deduplicate and order deterministically.
    out.sort_by(|a, b| {
        (&a.array, a.kind, &a.vector, a.src_stmt, a.dst_stmt)
            .cmp(&(&b.array, b.kind, &b.vector, b.src_stmt, b.dst_stmt))
    });
    out.dedup();
    Ok(out)
}

/// Source-write/sink-write flags → dependence kind.
pub(crate) fn kind_of(src_is_write: bool, dst_is_write: bool) -> DepKind {
    match (src_is_write, dst_is_write) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (false, false) => DepKind::Input,
    }
}

/// The distinct dependence-vector set `D` of a nest: every extracted
/// dependence's vector, deduplicated, in lexicographic order.
pub fn dependence_vectors(nest: &LoopNest, opts: DepOptions) -> Result<Vec<Point>, Error> {
    let deps = extract_dependences(nest, opts)?;
    let set: BTreeSet<Point> = deps
        .into_iter()
        .map(|d| d.vector)
        .filter(|v| v.iter().any(|&x| x != 0))
        .collect();
    Ok(set.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::IterSpace;
    use crate::Stmt;

    fn l1() -> LoopNest {
        LoopNest::new(
            "L1",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![
                Stmt::assign(
                    Access::simple("A", 2, &[(0, 1), (1, 1)]),
                    vec![
                        Access::simple("A", 2, &[(0, 1), (1, 0)]),
                        Access::simple("B", 2, &[(0, 0), (1, 0)]),
                    ],
                ),
                Stmt::assign(
                    Access::simple("B", 2, &[(0, 1), (1, 0)]),
                    vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
                ),
            ],
        )
        .unwrap()
    }

    fn matmul() -> LoopNest {
        // C[i,j] := C[i,j] + A[i,k] * B[k,j] over a 4×4×4 space.
        LoopNest::new(
            "matmul",
            IterSpace::rect(&[4, 4, 4]).unwrap(),
            vec![Stmt::assign(
                Access::simple("C", 3, &[(0, 0), (1, 0)]),
                vec![
                    Access::simple("C", 3, &[(0, 0), (1, 0)]),
                    Access::simple("A", 3, &[(0, 0), (2, 0)]),
                    Access::simple("B", 3, &[(2, 0), (1, 0)]),
                ],
            )],
        )
        .unwrap()
    }

    #[test]
    fn l1_dependence_vectors_match_paper() {
        // Example 1: D = {(0,1), (1,1), (1,0)} — all flow dependences.
        let d = dependence_vectors(&l1(), DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
        // And only flow dependences arise (subscripts never conflict
        // anti-wise in this loop).
        let deps = extract_dependences(&l1(), DepOptions::default()).unwrap();
        assert!(deps.iter().all(|d| d.kind == DepKind::Flow));
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn matmul_dependences_match_paper_rewritten_form() {
        // Example 2: the paper rewrites matmul to expose
        // d_A = (0,1,0), d_B = (1,0,0), d_C = (0,0,1).
        let d = dependence_vectors(&matmul(), DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn matmul_reuse_requires_input_option() {
        let opts = DepOptions {
            include_input_reuse: false,
            ..Default::default()
        };
        let d = dependence_vectors(&matmul(), opts).unwrap();
        // Only the C recurrence remains.
        assert_eq!(d, vec![vec![0, 0, 1]]);
    }

    #[test]
    fn matvec_dependences_match_paper() {
        // L4: y[i] := y[i] + A[i,j] * x[j] → D = {(1,0), (0,1)}.
        let nest = LoopNest::new(
            "matvec",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![Stmt::assign(
                Access::simple("y", 2, &[(0, 0)]),
                vec![
                    Access::simple("y", 2, &[(0, 0)]),
                    Access::simple("A", 2, &[(0, 0), (1, 0)]),
                    Access::simple("x", 2, &[(1, 0)]),
                ],
            )],
        )
        .unwrap();
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn anti_dependence_detected() {
        // A[i] := A[i+1] — read of i+1 happens before the write at i+1:
        // anti dependence with distance (1).
        let nest = LoopNest::new(
            "anti",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 1, &[(0, 0)]),
                vec![Access::simple("A", 1, &[(0, 1)])],
            )],
        )
        .unwrap();
        let deps = extract_dependences(&nest, DepOptions::default()).unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Anti);
        assert_eq!(deps[0].vector, vec![1]);
        // Excluded when anti/output deps are off.
        let opts = DepOptions {
            include_anti_output: false,
            ..Default::default()
        };
        assert!(extract_dependences(&nest, opts).unwrap().is_empty());
    }

    #[test]
    fn non_uniform_rejected() {
        // A[2i] written, A[i] read → non-uniform.
        let nest = LoopNest::new(
            "nonuniform",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![crate::Aff::new(vec![2], 0)]),
                vec![Access::simple("A", 1, &[(0, 0)])],
            )],
        )
        .unwrap();
        assert!(matches!(
            extract_dependences(&nest, DepOptions::default()),
            Err(Error::NonUniform { .. })
        ));
    }

    #[test]
    fn relaxed_extraction_records_nonuniform_pairs() {
        // A[2i] := A[i] + B[i-1]; B[i] := A[i]: the A write/read pair is
        // non-uniform and must be recorded, while the uniform B chain
        // still extracts. A[i]/A[i] (read/read, same shape) is uniform.
        let nest = LoopNest::new(
            "mix",
            IterSpace::rect(&[8]).unwrap(),
            vec![
                Stmt::assign(
                    Access::new("A", vec![crate::Aff::new(vec![2], 0)]),
                    vec![
                        Access::simple("A", 1, &[(0, 0)]),
                        Access::simple("B", 1, &[(0, -1)]),
                    ],
                ),
                Stmt::assign(
                    Access::simple("B", 1, &[(0, 0)]),
                    vec![Access::simple("A", 1, &[(0, 0)])],
                ),
            ],
        )
        .unwrap();
        let (deps, pairs) = extract_dependences_relaxed(&nest, DepOptions::default()).unwrap();
        // Two non-uniform pairs: A[2i]/A[i] of S0 and A[2i]/A[i] of S1.
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| p.array == "A" && p.a_write));
        // The uniform B flow dep B[i] -> B[i-1] survives.
        assert!(deps
            .iter()
            .any(|d| d.array == "B" && d.kind == DepKind::Flow && d.vector == vec![1]));
        // The strict entry point still rejects the same nest.
        assert!(matches!(
            extract_dependences(&nest, DepOptions::default()),
            Err(Error::NonUniform { .. })
        ));
    }

    #[test]
    fn never_conflicting_accesses_no_dep() {
        // A[2i] written, A[2i+1] read: same linear part, offsets differ by
        // 1, but 2d = 1 has no integer solution → no dependence.
        let two_i = crate::Aff::new(vec![2], 0);
        let nest = LoopNest::new(
            "parity",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![two_i.clone()]),
                vec![Access::new("A", vec![two_i + 1])],
            )],
        )
        .unwrap();
        assert!(extract_dependences(&nest, DepOptions::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn vectors_are_lex_positive_and_distinct() {
        for nest in [l1(), matmul()] {
            let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
            for v in &d {
                assert_eq!(
                    lex_sign(v),
                    Ordering::Greater,
                    "vector {v:?} not lex-positive"
                );
            }
            let set: BTreeSet<_> = d.iter().collect();
            assert_eq!(set.len(), d.len());
        }
    }

    #[test]
    fn intra_iteration_dependences_extracted_on_request() {
        // S0 writes T[i], S1 reads T[i] in the same iteration.
        let nest = LoopNest::new(
            "intra",
            IterSpace::rect(&[4]).unwrap(),
            vec![
                Stmt::assign(
                    Access::simple("T", 1, &[(0, 0)]),
                    vec![Access::simple("A", 1, &[(0, 0)])],
                ),
                Stmt::assign(
                    Access::simple("U", 1, &[(0, 0)]),
                    vec![Access::simple("T", 1, &[(0, 0)])],
                ),
            ],
        )
        .unwrap();
        // Default: no intra deps, and no vectors at all.
        let d = extract_dependences(&nest, DepOptions::default()).unwrap();
        assert!(d.is_empty());
        // With the flag: one zero-distance flow dep S0 → S1.
        let opts = DepOptions {
            include_intra: true,
            ..Default::default()
        };
        let d = extract_dependences(&nest, opts).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DepKind::Flow);
        assert_eq!((d[0].src_stmt, d[0].dst_stmt), (0, 1));
        assert_eq!(d[0].vector, vec![0]);
        // The vector set still excludes zero vectors.
        assert!(dependence_vectors(&nest, opts).unwrap().is_empty());
    }

    #[test]
    fn stencil_multiple_flow_deps() {
        // A[i+1,j+1] := A[i,j] + A[i,j+1] + A[i+1,j] — three flow deps.
        let nest = LoopNest::new(
            "stencil",
            IterSpace::rect(&[5, 5]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 2, &[(0, 1), (1, 1)]),
                vec![
                    Access::simple("A", 2, &[(0, 0), (1, 0)]),
                    Access::simple("A", 2, &[(0, 0), (1, 1)]),
                    Access::simple("A", 2, &[(0, 1), (1, 0)]),
                ],
            )],
        )
        .unwrap();
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
    }
}
