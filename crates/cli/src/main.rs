//! `loom` — command-line driver for the Sheu–Tai partitioning and
//! mapping pipeline.
//!
//! ```text
//! loom workloads
//! loom partition --workload matmul --size 4 [--pi 1,1,1] [--grouping 1]
//! loom map       --workload matvec --size 16 --cube 2
//! loom simulate  --workload sor --size 16 --cube 3
//!                [--t-calc 1 --t-start 50 --t-comm 5] [--batch] [--contention]
//!                [--fault-plan plan.json --fault-seed 7 --recovery remap]
//! loom codegen   --workload l1 --size 4 --cube 1 [--run]
//! loom check     --workload sor --size 8 --cube 2 [--symbolic]
//!                [--format human|json|sarif] [--allow LC004]
//! loom viz       --workload sor --size 8 [--dot]
//! loom explore   --workload matvec --size 16 [--pi-bound 1] [--top 10]
//!                [--threads 4] [--no-prune] [--bench-out bench.json]
//!                [--symbolic] [--symbolic-budget POINTS]
//! loom profile   --workload matvec --size 16 --cube 2 [--top 3] [--json]
//!                [--trace-out t.json] [--metrics-out m.json] [--flame-out f.txt]
//! loom obs diff  old.json new.json [--threshold 1] [--warn-only] [--json]
//! loom table1    [--m 1024]
//! ```
//!
//! Setting `LOOM_FLIGHT_DIR` makes every pipeline-running subcommand
//! flush its flight-recorder ring (JSONL) into that directory on exit.
//!
//! Every failure funnels through the typed [`CliError`] (exit 2 for
//! usage problems, exit 1 for wrong artifacts); `.loom` input is parsed
//! by the resilient front end, so malformed files come back as a full
//! `LP0NN` diagnostic report — all problems in one pass — rather than
//! one terse abort.

mod args;
mod error;

use args::Args;
use error::CliError;
use loom_core::analytic::table1_rows;
use loom_core::pipeline::MachineOptions;
use loom_core::report::Table;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;
use loom_obs::{FlightRecorder, Json, Recorder};
use loom_workloads::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: loom <command> [flags]\n\
         commands:\n\
         \x20 workloads                         list built-in workloads\n\
         \x20 partition --workload W --size S   run Algorithm 1, print blocks\n\
         \x20 map       --workload W --cube N   run Algorithms 1+2, print placement\n\
         \x20 simulate  --workload W --cube N   full pipeline + machine simulation\n\
         \x20 sim       alias for simulate\n\
         \x20 codegen   --workload W --cube N   emit SPMD pseudo-code [--run verifies]\n\
         \x20 check     --workload W --cube N   static verifier [--symbolic|--interleave]\n\
         \x20           [--format human|json|sarif] [--allow IDS] [--explain LC0NN]\n\
         \x20           [--corrupt drop-send|dup-send|drop-recv|swap] [--corrupt-seed N]\n\
         \x20 viz       --workload W            ASCII block/wavefront grids [--dot]\n\
         \x20 explore   --workload W            rank (Π, grouping, N) by simulated cost\n\
         \x20           [--threads T] [--no-prune] [--bench-out FILE] [--metrics-out FILE]\n\
         \x20           [--symbolic] rank by closed-form T_exec (simulate only on Unknown)\n\
         \x20           [--symbolic-budget POINTS] probe budget for the derivation\n\
         \x20 profile   --workload W --cube N   critical-path profile of a simulated run\n\
         \x20           [--top K] [--json] [--trace-out FILE] [--flame-out FILE]\n\
         \x20 obs diff  OLD NEW                 compare two bench/metrics JSON documents\n\
         \x20           [--threshold B] [--warn-only] [--json]\n\
         \x20 table1    [--m M]                 the paper's Table I\n\
         common flags: --size S (default 8), --size2 S (2nd extent), --pi a,b,…,\n\
         \x20               --file NEST.loom (parse a .loom nest; variable-distance\n\
         \x20               dependences are folded and certified per LC016 unless\n\
         \x20               --no-uniformize restores the front-end rejection)\n\
         output flags (simulate/check/explore/profile):\n\
         \x20               --metrics-out FILE (counters + simulator metrics JSON),\n\
         \x20               --trace-out FILE (Chrome/Perfetto trace JSON),\n\
         \x20               --flame-out FILE (collapsed-stack flamegraph export)\n\
         simulate flags: --t-calc/--t-start/--t-comm, --batch, --contention,\n\
         \x20               --mesh RxC | --ring N (instead of --cube),\n\
         \x20               --validate (replay the trace through verify_trace)\n\
         fault flags:    --fault-plan FILE (JSON fault plan, see docs/RESILIENCE.md),\n\
         \x20               --fault-seed N (override the plan's noise seed),\n\
         \x20               --recovery abort|retry|remap (default retry),\n\
         \x20               --degradation-out FILE (degradation report JSON)"
    );
    std::process::exit(2)
}

/// Parse `--file` into a nest through the resilient front end.
/// Malformed input renders the full `LP0NN` report (honoring
/// `--format` and `--allow`); with every error suppressed the
/// recovered partial IR is used.
fn parse_file_nest(a: &Args, path: &str) -> Result<loom_loopir::LoopNest, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
    let name = path.rsplit('/').next().unwrap_or("nest").to_string();
    let out = loom_loopir::parse_nest_recovering(&name, &src);
    if out.diags.is_empty() {
        // The front-end invariant: no diagnostics implies an IR.
        return out
            .nest
            .ok_or_else(|| CliError::failed(format!("{path}: internal error: no IR produced")));
    }
    let mut report = loom_check::report_from_parse(&out.diags);
    apply_allow(a, &mut report);
    if report.has_errors() {
        render_report(a, &report)?;
        return Err(CliError::Diagnostics);
    }
    // Every error was --allow'ed: surface the warnings on stderr and
    // continue with whatever IR recovery salvaged.
    eprint!("{}", report.render_human());
    out.nest
        .ok_or_else(|| CliError::failed(format!("{path}: no usable IR after recovery")))
}

/// `--pi`, validated: the all-zero time function is never a schedule
/// (every projection stage divides by ‖Π‖²), so reject it up front
/// instead of letting the partitioner assert.
fn pi_flag(a: &Args) -> Result<Option<Vec<i64>>, CliError> {
    match a.int_list_flag("pi")? {
        Some(pi) if pi.iter().all(|&c| c == 0) => Err(CliError::usage(
            "error: --pi needs at least one nonzero coefficient",
        )),
        other => Ok(other),
    }
}

/// `--pi` if given, else the optimal legal time function for `deps`.
fn pick_pi(
    a: &Args,
    nest: &loom_loopir::LoopNest,
    deps: &[Vec<i64>],
    label: &str,
) -> Result<Vec<i64>, CliError> {
    if let Some(pi) = pi_flag(a)? {
        return Ok(pi);
    }
    let pi =
        loom_hyperplane::find_optimal(deps, nest.space(), loom_hyperplane::SearchConfig::default())
            .map_err(|e| CliError::failed(format!("{label}: no legal time function: {e}")))?
            .coeffs()
            .to_vec();
    if pi.iter().all(|&c| c == 0) {
        // Only reachable with an empty dependence set: every candidate
        // is vacuously legal and the zero vector minimizes the search.
        return Err(CliError::failed(format!(
            "{label}: the nest has no loop-carried dependences, so no time \
             function is forced; pass one explicitly with --pi"
        )));
    }
    Ok(pi)
}

fn pick_workload(a: &Args) -> Result<Workload, CliError> {
    if let Some(path) = a.flags.get("file").cloned() {
        let nest = parse_file_nest(a, &path)?;
        let opts = loom_loopir::DepOptions::default();
        let deps = match loom_loopir::deps::dependence_vectors(&nest, opts) {
            Ok(deps) => deps,
            // Non-uniform nests go through certified uniformization
            // (LC016) unless --no-uniformize restores the seed
            // rejection; an uncertifiable nest renders its report.
            Err(loom_loopir::Error::NonUniform { .. }) if !a.switch("no-uniformize") => {
                let mut stats = loom_check::UniformizeStats::default();
                match loom_check::admit_uniformized(&nest, opts, &mut stats) {
                    Ok((u, _diags)) => {
                        let vecs: Vec<String> = u
                            .vectors
                            .iter()
                            .map(|v| {
                                let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
                                format!("({})", parts.join(","))
                            })
                            .collect();
                        eprintln!(
                            "note: {path}: variable-distance dependences folded into the \
                             certified synthesized set {{{}}} (LC016); run \
                             `loom check --file {path}` for the certificate and the \
                             tightness report",
                            vecs.join(", ")
                        );
                        u.vectors
                    }
                    Err(report) => {
                        let mut report = report;
                        apply_allow(a, &mut report);
                        render_report(a, &report)?;
                        return Err(CliError::Diagnostics);
                    }
                }
            }
            Err(e) => return Err(CliError::usage(format!("{path}: {e}"))),
        };
        let pi = pick_pi(a, &nest, &deps, &path)?;
        return Ok(Workload { nest, deps, pi });
    }
    let size = a.int_flag("size", 8)?;
    let size2 = a.int_flag("size2", size)?;
    Ok(match a.str_flag("workload", "l1").as_str() {
        "l1" => loom_workloads::l1::workload(size),
        "matmul" => loom_workloads::matmul::workload(size),
        "matvec" => loom_workloads::matvec::workload(size),
        "conv" | "conv1d" => loom_workloads::conv::workload(size, size2.min(size)),
        "sor" | "stencil" => loom_workloads::sor::workload(size, size2),
        "transitive" | "tc" => loom_workloads::transitive::workload(size),
        "dft" => loom_workloads::dft::workload(size),
        "conv2d" => loom_workloads::conv2d::workload(size, size2.min(size)),
        "heat2d" | "heat" => loom_workloads::heat2d::workload(size, size2),
        "triangular" | "tri" => loom_workloads::triangular::workload(size),
        other => {
            return Err(CliError::usage(format!(
                "unknown workload `{other}`; run `loom workloads`"
            )))
        }
    })
}

fn machine_params(a: &Args) -> Result<MachineParams, CliError> {
    Ok(MachineParams {
        t_calc: a.int_flag("t-calc", 1)?.max(0) as u64,
        t_start: a.int_flag("t-start", 50)?.max(0) as u64,
        t_comm: a.int_flag("t-comm", 5)?.max(0) as u64,
        t_recv: a.int_flag("t-recv", 0)?.max(0) as u64,
    })
}

fn pick_target(a: &Args) -> Result<Option<loom_core::Target>, CliError> {
    if let Some(mesh) = a.flags.get("mesh") {
        let parts: Vec<&str> = mesh.split(['x', 'X']).collect();
        if let [r, c] = parts[..] {
            if let (Ok(rows), Ok(cols)) = (r.parse(), c.parse()) {
                return Ok(Some(loom_core::Target::Mesh { rows, cols }));
            }
        }
        return Err(CliError::usage("error: --mesh expects RxC (e.g. 2x4)"));
    }
    if let Some(ring) = a.flags.get("ring") {
        return match ring.parse() {
            Ok(n) => Ok(Some(loom_core::Target::Ring(n))),
            Err(_) => Err(CliError::usage("error: --ring expects an integer")),
        };
    }
    Ok(None)
}

/// `--grouping` as an index, when given.
fn grouping_choice(a: &Args) -> Result<Option<usize>, CliError> {
    match a.flags.get("grouping") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage("error: --grouping expects an index")),
    }
}

/// Build the fault configuration from `--fault-plan` / `--fault-seed`
/// / `--recovery`. The plan is statically validated (rule `LC008`)
/// against the machine the run will target before it is accepted; any
/// error diagnostic refuses the run.
fn fault_config(a: &Args) -> Result<Option<loom_machine::FaultConfig>, CliError> {
    let Some(path) = a.flags.get("fault-plan") else {
        return Ok(None);
    };
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
    let doc = loom_obs::Json::parse(&src)
        .map_err(|e| CliError::usage(format!("{path}: invalid JSON: {e}")))?;
    let plan = loom_machine::FaultPlan::from_json(&doc)
        .map_err(|e| CliError::usage(format!("{path}: invalid fault plan: {e}")))?;
    let topology = pick_target(a)?
        .unwrap_or(loom_core::Target::Hypercube(
            a.int_flag("cube", 1)?.max(0) as usize
        ))
        .topology();
    // Route the LC008 diagnostics through a Report so `--allow LC008`
    // downgrades them exactly like every other rule: suppression and
    // exit-code policy are uniform across all rules.
    let mut report =
        loom_check::Report::from_diagnostics(loom_check::check_fault_plan(&plan, &topology));
    apply_allow(a, &mut report);
    for d in report.diagnostics() {
        eprintln!("{path}: {d}");
    }
    if report.has_errors() {
        return Err(CliError::Diagnostics);
    }
    let policy: loom_machine::RecoveryPolicy = a
        .str_flag("recovery", "retry")
        .parse()
        .map_err(|e: String| CliError::usage(format!("error: {e}")))?;
    let mut fc = loom_machine::FaultConfig::new(plan, policy);
    if a.flags.contains_key("fault-seed") {
        fc.seed_override = Some(a.int_flag("fault-seed", 0)?.max(0) as u64);
    }
    Ok(Some(fc))
}

fn run_pipeline(
    a: &Args,
    w: &Workload,
    with_machine: bool,
) -> Result<loom_core::PipelineOutput, CliError> {
    run_pipeline_with(a, w, with_machine, &Recorder::disabled())
}

fn run_pipeline_with(
    a: &Args,
    w: &Workload,
    with_machine: bool,
    recorder: &Recorder,
) -> Result<loom_core::PipelineOutput, CliError> {
    let machine = if with_machine {
        Some(MachineOptions {
            params: machine_params(a)?,
            batch_messages: a.switch("batch"),
            link_contention: a.switch("contention"),
            record_trace: a.flags.contains_key("trace-out"),
            collect_metrics: a.flags.contains_key("metrics-out")
                || a.flags.contains_key("trace-out"),
            validate_trace: a.switch("validate"),
            faults: fault_config(a)?,
            ..Default::default()
        })
    } else {
        None
    };
    let config = PipelineConfig {
        time_fn: pi_flag(a)?.or(Some(w.pi.clone())),
        cube_dim: a.int_flag("cube", 1)?.max(0) as usize,
        target: pick_target(a)?,
        partition: loom_partition::PartitionConfig {
            grouping_choice: grouping_choice(a)?,
            seed: None,
        },
        machine,
        ..Default::default()
    };
    Pipeline::new(w.nest.clone())
        .run_with(&config, recorder)
        .map_err(|e| CliError::failed(format!("pipeline failed: {e}")))
}

/// An enabled recorder whose flight ring honors `LOOM_FLIGHT_DIR`.
fn obs_recorder() -> Recorder {
    Recorder::enabled_with_flight(FlightRecorder::from_env())
}

/// Flush the recorder's flight ring to `LOOM_FLIGHT_DIR` (no-op when
/// the variable is unset).
fn flush_flight(rec: &Recorder, name: &str) {
    if let Some(path) = rec.flight().flush_to_env_dir(name) {
        eprintln!("flight log written to {}", path.display());
    }
}

/// Write the collapsed-stack span export for `--flame-out`.
fn write_flame(rec: &Recorder, path: &str) -> Result<(), CliError> {
    write_out(
        path,
        loom_obs::flight::collapsed_stacks(&rec.spans()),
        "flamegraph",
    )
}

fn write_out(path: &str, contents: String, what: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
    println!("{what} written to {path}");
    Ok(())
}

fn cmd_workloads() {
    let mut t = Table::new(["name", "depth", "D", "paper role"]);
    for (name, w, role) in [
        ("l1", loom_workloads::l1::workload(4), "§II running example"),
        (
            "matmul",
            loom_workloads::matmul::workload(4),
            "§III Example 2",
        ),
        (
            "matvec",
            loom_workloads::matvec::workload(8),
            "§IV / Table I",
        ),
        (
            "conv1d",
            loom_workloads::conv::workload(8, 4),
            "§I motivation",
        ),
        ("sor", loom_workloads::sor::workload(6, 6), "extension"),
        (
            "transitive",
            loom_workloads::transitive::workload(4),
            "§I motivation",
        ),
        ("dft", loom_workloads::dft::workload(8), "§I motivation"),
        (
            "conv2d",
            loom_workloads::conv2d::workload(4, 2),
            "extension (4-deep)",
        ),
        (
            "triangular",
            loom_workloads::triangular::workload(6),
            "extension (affine bounds)",
        ),
        (
            "heat2d",
            loom_workloads::heat2d::workload(3, 4),
            "extension (negative deps)",
        ),
    ] {
        t.row([
            name.to_string(),
            format!("{}", w.nest.dim()),
            format!("{:?}", w.deps),
            role.to_string(),
        ]);
    }
    println!("{t}");
}

fn cmd_partition(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    // Partitioning is machine-independent; default to the 1-processor
    // cube so a small block count never fails the mapping stage.
    let mut a2 = a.clone();
    a2.flags.entry("cube".into()).or_insert_with(|| "0".into());
    let out = run_pipeline(&a2, &w, false)?;
    println!("{}", w.nest);
    println!("D = {:?}", out.deps);
    println!("{} ({} steps)", out.pi, out.pi.steps(w.nest.space()));
    let p = &out.partitioning;
    println!(
        "r = {}, beta = {}, {} projected points -> {} blocks (largest {})",
        p.vectors().r,
        p.vectors().beta,
        p.projected().len(),
        p.num_blocks(),
        p.max_block_size()
    );
    println!(
        "arcs: {} total, {} interblock ({:.0}%)",
        out.comm.total_arcs,
        out.comm.interblock_arcs,
        100.0 * out.comm.interblock_fraction()
    );
    if a.switch("blocks") {
        for (b, block) in p.blocks().iter().enumerate() {
            let pts: Vec<String> = block
                .iter()
                .map(|&id| format!("{:?}", p.structure().points()[id]))
                .collect();
            println!("  B{b}: {}", pts.join(" "));
        }
    }
    let violations = loom_partition::laws::check_all(p);
    println!(
        "laws: {}",
        if violations.is_empty() {
            "all hold".into()
        } else {
            format!("{violations:?}")
        }
    );
    Ok(())
}

fn cmd_map(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    let out = run_pipeline(a, &w, false)?;
    let mut t = Table::new(["block", "size", "processor"]);
    for (b, &proc) in out.mapping.assignment().iter().enumerate() {
        t.row([
            format!("B{b}"),
            format!("{}", out.partitioning.block(b).len()),
            format!("P{proc:0w$b}", w = out.mapping.cube().dim().max(1)),
        ]);
    }
    println!("{t}");
    let q = loom_mapping::metrics::evaluate(&out.tig, out.mapping.assignment(), out.mapping.cube());
    println!("quality: {q}");
    Ok(())
}

fn cmd_simulate(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    let rec = obs_recorder();
    let out = run_pipeline_with(a, &w, true, &rec)?;
    let sim = out
        .sim_report()
        .map_err(|e| CliError::failed(format!("pipeline failed: {e}")))?;
    let params = machine_params(a)?;
    println!(
        "{} on {:?} ({} procs), t_calc={} t_start={} t_comm={}{}{}",
        w.nest.name(),
        out.target,
        out.placement.num_procs(),
        params.t_calc,
        params.t_start,
        params.t_comm,
        if a.switch("batch") { ", batched" } else { "" },
        if a.switch("contention") {
            ", contention"
        } else {
            ""
        },
    );
    println!("makespan          = {}", sim.makespan);
    println!("busiest processor = {}", sim.max_proc_occupancy());
    println!("messages, words   = {}, {}", sim.messages, sim.words);
    let mut t = Table::new(["proc", "compute", "comm", "total"]);
    for p in 0..sim.compute.len() {
        t.row([
            format!("P{p}"),
            format!("{}", sim.compute[p]),
            format!("{}", sim.comm[p]),
            format!("{}", sim.compute[p] + sim.comm[p]),
        ]);
    }
    println!("{t}");
    println!(
        "utilization:\n{}",
        loom_viz::utilization_chart(&sim.compute, &sim.comm, sim.makespan, 40)
    );
    if let Some(deg) = sim.degradation.as_ref() {
        println!(
            "faults: {} injected, {} hit ({} drops, {} corruptions, {} delays)",
            deg.faults_injected, deg.faults_hit, deg.drops, deg.corruptions, deg.delays
        );
        println!(
            "recovery: {} retries ({} words resent), {} reroutes, {} crashes, {} tasks remapped",
            deg.retries, deg.retransmitted_words, deg.reroutes, deg.crashes, deg.remapped_tasks
        );
        println!(
            "degradation: makespan {} -> {} (+{:.1}%)",
            deg.baseline_makespan,
            deg.degraded_makespan,
            100.0 * deg.makespan_inflation()
        );
        if let Some(path) = a.flags.get("degradation-out") {
            write_out(path, deg.to_json().render_pretty(), "degradation report")?;
        }
    }
    if a.switch("validate") {
        // A violating trace already failed the pipeline with
        // PipelineError::Trace, so reaching here means a clean replay.
        println!("trace validated: no violations");
    }
    let obs = a.obs_flags();
    if let Some(path) = &obs.metrics_out {
        let doc = loom_core::obs_export::metrics_json(&rec, Some(sim));
        write_out(path, doc.render_pretty(), "metrics")?;
    }
    if let Some(path) = &obs.trace_out {
        match loom_machine::trace::chrome_trace(sim, out.placement.num_procs()) {
            Some(doc) => write_out(path, doc.render_pretty(), "trace")?,
            None => {
                return Err(CliError::failed(
                    "internal error: no trace recorded despite --trace-out",
                ))
            }
        }
    }
    if let Some(path) = &obs.flame_out {
        write_flame(&rec, path)?;
    }
    flush_flight(&rec, "simulate");
    Ok(())
}

fn cmd_codegen(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    let out = run_pipeline(a, &w, false)?;
    let cg = loom_codegen::generate(
        &w.nest,
        &out.partitioning,
        out.mapping.assignment(),
        out.mapping.cube().len(),
    )
    .map_err(|e| CliError::failed(format!("codegen refused: {e}")))?;
    println!("{}", loom_codegen::render::render(&w.nest, &cg));
    println!(
        "{} computes, {} messages",
        cg.program.num_computes(),
        cg.program.num_messages()
    );
    if a.switch("run") {
        use loom_exec::memory::address_hash_init;
        let result = loom_codegen::run(&w.nest, &cg, &address_hash_init)
            .map_err(|e| CliError::failed(format!("SPMD run failed: {e}")))?;
        let serial = loom_exec::sequential(&w.nest, &address_hash_init);
        match loom_exec::equivalent(&result.gathered, &serial) {
            Ok(()) => println!("verified: bit-identical to sequential execution"),
            Err(d) => return Err(CliError::failed(format!("DIVERGED: {d:?}"))),
        }
    }
    Ok(())
}

/// Render a check report in the selected `--format` (`human`, `json`,
/// or `sarif`; the legacy `--json` switch still selects JSON).
fn render_report(a: &Args, report: &loom_check::Report) -> Result<(), CliError> {
    let format = if a.switch("json") {
        "json".to_string()
    } else {
        a.str_flag("format", "human")
    };
    match format.as_str() {
        "human" => print!("{}", report.render_human()),
        "json" => println!("{}", report.to_json().render_pretty()),
        "sarif" => {
            let artifact = a.flags.get("file").map(|s| s.as_str());
            println!("{}", report.to_sarif(artifact).render_pretty())
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown --format `{other}` (expected human, json, or sarif)"
            )))
        }
    }
    Ok(())
}

fn apply_allow(a: &Args, report: &mut loom_check::Report) {
    if let Some(allow) = a.flags.get("allow") {
        let codes: Vec<String> = allow
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        report.allow(&codes);
    }
}

/// Parse `--corrupt MODE` into a program mutation.
fn parse_mutation(name: &str) -> Result<loom_check::Mutation, CliError> {
    match name {
        "drop-send" => Ok(loom_check::Mutation::DropSend),
        "dup-send" => Ok(loom_check::Mutation::DupSend),
        "drop-recv" => Ok(loom_check::Mutation::DropRecv),
        "swap" => Ok(loom_check::Mutation::SwapSendEarlier),
        other => Err(CliError::usage(format!(
            "unknown --corrupt `{other}` (expected drop-send, dup-send, drop-recv, or swap)"
        ))),
    }
}

fn cmd_check(a: &Args) -> Result<(), CliError> {
    if let Some(code) = a.flags.get("explain") {
        return match loom_check::explain(code) {
            Some(text) => {
                print!("{text}");
                Ok(())
            }
            None => Err(CliError::usage(format!(
                "unknown rule `{code}`; known rules are LC001 through LC018 and LP001 through LP008"
            ))),
        };
    }
    let symbolic = a.switch("symbolic");
    let interleave = a.switch("interleave") || a.flags.contains_key("corrupt");
    if symbolic && interleave {
        return Err(CliError::usage(
            "--symbolic and --interleave/--corrupt are mutually exclusive",
        ));
    }
    // Load `--file` nests by hand: a non-uniform nest goes through the
    // uniformization engine and either continues with the certified
    // folded set (the certificate rides along in the report) or comes
    // back as a rejection report on stdout, not a front-end abort on
    // stderr.
    let mut pre_diags: Vec<loom_check::Diagnostic> = Vec::new();
    let w = if let Some(path) = a.flags.get("file").cloned() {
        let nest = parse_file_nest(a, &path)?;
        match loom_loopir::deps::dependence_vectors(&nest, loom_loopir::DepOptions::default()) {
            Ok(deps) => {
                let pi = pick_pi(a, &nest, &deps, &path)?;
                Workload { nest, deps, pi }
            }
            Err(e @ loom_loopir::Error::NonUniform { .. }) if a.switch("no-uniformize") => {
                return Err(CliError::usage(format!("{path}: {e}")));
            }
            Err(loom_loopir::Error::NonUniform { .. }) => {
                let mut stats = loom_check::UniformizeStats::default();
                let (diags, uniformized) =
                    loom_check::check_access_dependences_uniformized(&nest, None, &mut stats);
                match uniformized {
                    Some(u) => {
                        pre_diags = diags;
                        let deps = u.vectors;
                        let pi = pick_pi(a, &nest, &deps, &path)?;
                        Workload { nest, deps, pi }
                    }
                    None => {
                        let mut report = loom_check::Report::from_diagnostics(diags);
                        apply_allow(a, &mut report);
                        render_report(a, &report)?;
                        return if report.has_errors() {
                            Err(CliError::Diagnostics)
                        } else {
                            Ok(())
                        };
                    }
                }
            }
            Err(e) => return Err(CliError::usage(format!("{path}: {e}"))),
        }
    } else {
        pick_workload(a)?
    };
    let pi = loom_hyperplane::TimeFn::new(pi_flag(a)?.unwrap_or_else(|| w.pi.clone()));
    let cube_dim = a.int_flag("cube", 1)?.max(0) as usize;
    let rec = obs_recorder();

    // Stage the pipeline by hand rather than through `run_pipeline`: an
    // illegal Π must come back as an LC001/LC009 diagnostic on stdout,
    // not as a partitioner error on stderr.
    let mut report = loom_check::Report::from_diagnostics(if symbolic {
        loom_check::check_legality_symbolic(&pi, &w.deps)
    } else {
        loom_check::check_legality(&pi, &w.deps)
    });
    if !report.has_errors() {
        let config = loom_partition::PartitionConfig {
            grouping_choice: grouping_choice(a)?,
            seed: None,
        };
        let partitioning =
            loom_partition::partition(w.nest.space().clone(), w.deps.clone(), pi.clone(), &config)
                .map_err(|e| CliError::failed(format!("partitioning failed: {e}")))?;
        let tig = loom_partition::Tig::from_partitioning(&partitioning);
        let mapping = loom_mapping::map_partitioning(&partitioning, cube_dim)
            .map_err(|e| CliError::failed(format!("mapping failed: {e}")))?;
        if let Some(mode) = a.flags.get("corrupt") {
            // Seeded-mutation mode: generate the SPMD program, corrupt
            // it, and run the interleaving engine's program-level
            // rules on the result — an expect-fail harness for LC013–
            // LC015 counterexamples.
            let mutation = parse_mutation(mode)?;
            let seed = a.int_flag("corrupt-seed", 1)?.max(0) as u64;
            let mut cg = loom_codegen::generate(
                &w.nest,
                &partitioning,
                mapping.assignment(),
                1usize << mapping.cube().dim(),
            )
            .map_err(|e| CliError::failed(format!("codegen failed: {e}")))?;
            cg.program =
                loom_check::mutate_program(&cg.program, mutation, seed).ok_or_else(|| {
                    CliError::usage(format!(
                        "--corrupt {mode}: the program has no eligible site"
                    ))
                })?;
            report = loom_check::check_program(
                &w.nest,
                &cg,
                &loom_check::InterleaveOptions::default(),
                &rec,
            );
        } else {
            report = loom_check::check_pipeline_mode(
                &loom_check::PipelineCheck {
                    nest: &w.nest,
                    deps: &w.deps,
                    pi: &pi,
                    partitioning: &partitioning,
                    tig: &tig,
                    assignment: mapping.assignment(),
                    cube_dim: mapping.cube().dim(),
                },
                if interleave {
                    loom_check::CheckMode::Interleaving
                } else if symbolic {
                    loom_check::CheckMode::Symbolic
                } else {
                    loom_check::CheckMode::Enumerative
                },
                &rec,
            );
        }
    }
    // Prepend the uniformization certificate/tightness diagnostics of
    // an admitted --file nest — except in symbolic mode, where
    // check_pipeline_mode re-runs the engine and already includes them.
    if !pre_diags.is_empty() && !symbolic {
        let mut merged = loom_check::Report::from_diagnostics(pre_diags);
        merged.extend(report.diagnostics().to_vec());
        report = merged;
    }
    apply_allow(a, &mut report);
    render_report(a, &report)?;
    let obs = a.obs_flags();
    if let Some(path) = &obs.metrics_out {
        let doc = loom_core::obs_export::metrics_json(&rec, None);
        write_out(path, doc.render_pretty(), "metrics")?;
    }
    if let Some(path) = &obs.flame_out {
        write_flame(&rec, path)?;
    }
    flush_flight(&rec, "check");
    if report.has_errors() {
        return Err(CliError::Diagnostics);
    }
    Ok(())
}

fn cmd_viz(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    let out = run_pipeline(a, &w, false)?;
    if a.switch("dot") {
        println!("{}", loom_viz::group_graph_dot(&out.partitioning));
        println!(
            "{}",
            loom_viz::tig_dot(&out.tig, Some(out.mapping.assignment()))
        );
        return Ok(());
    }
    match loom_viz::block_grid(&out.partitioning) {
        Some(grid) => {
            println!("blocks (one letter per block):\n{grid}");
            let sched = loom_hyperplane::Schedule::build(out.pi.clone(), w.nest.space());
            println!(
                "hyperplane steps (mod 10):\n{}",
                loom_viz::wavefront_grid(&sched, w.nest.space()).unwrap()
            );
        }
        None => {
            println!("(space is not 2-D; emitting DOT instead)\n");
            println!("{}", loom_viz::group_graph_dot(&out.partitioning));
        }
    }
    Ok(())
}

/// `--symbolic`: the size family behind the picked builtin workload, so
/// the explorer can rank by closed-form `T_exec`. A `--file` nest has
/// no size family, so the combination is a usage error.
fn symbolic_explore(a: &Args) -> Result<loom_core::explore::SymbolicExplore, CliError> {
    if a.flags.contains_key("file") {
        return Err(CliError::usage(
            "error: --symbolic needs a size-parameterized builtin workload; \
             a --file nest has no size family",
        ));
    }
    let size = a.int_flag("size", 8)?;
    let size2 = a.int_flag("size2", size)?;
    let raw = a.str_flag("workload", "l1");
    // Pin the secondary parameter exactly as `pick_workload` does, so
    // `family(size)` reproduces the nest being explored.
    let (name, size2) = match raw.as_str() {
        "conv" | "conv1d" => ("conv", Some(size2.min(size))),
        "conv2d" => ("conv2d", Some(size2.min(size))),
        "sor" | "stencil" => ("sor", Some(size2)),
        "heat2d" | "heat" => ("heat2d", Some(size2)),
        "transitive" | "tc" => ("transitive", None),
        "triangular" | "tri" => ("triangular", None),
        other => (other, None),
    };
    let fam = loom_workloads::family_of(name, size2).ok_or_else(|| {
        CliError::usage(format!("unknown workload `{raw}`; run `loom workloads`"))
    })?;
    let family: loom_core::symbolic_cost::NestFamily = std::sync::Arc::new(move |n| fam(n).nest);
    let mut opts = loom_core::symbolic_cost::DeriveOptions::default();
    if let Some(b) = a.flags.get("symbolic-budget") {
        opts.max_probe_points = b.parse().map_err(|_| {
            CliError::usage("error: --symbolic-budget expects a point count (integer)")
        })?;
    }
    Ok(loom_core::explore::SymbolicExplore { family, size, opts })
}

fn cmd_explore(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    let dims: Vec<usize> = a
        .int_list_flag("cubes")?
        .map(|v| v.into_iter().map(|x| x.max(0) as usize).collect())
        .unwrap_or_else(|| vec![1, 2, 3]);
    let cfg = loom_core::explore::ExploreConfig {
        pi_bound: a.int_flag("pi-bound", 1)?.max(1),
        top: a.int_flag("top", 10)?.max(1) as usize,
        machine: MachineOptions {
            params: machine_params(a)?,
            ..Default::default()
        },
        threads: a.int_flag("threads", 0)?.max(0) as usize,
        prune: !a.switch("no-prune"),
        symbolic: if a.switch("symbolic") {
            Some(symbolic_explore(a)?)
        } else {
            None
        },
    };
    let rec = obs_recorder();
    let start = std::time::Instant::now();
    let best = loom_core::explore::explore_with(&w.nest, &dims, &cfg, &rec)
        .map_err(|e| CliError::failed(format!("exploration failed: {e}")))?;
    let wall_us = start.elapsed().as_micros() as u64;
    if let Some(path) = &a.obs_flags().flame_out {
        write_flame(&rec, path)?;
    }
    flush_flight(&rec, "explore");
    if let Some(path) = a.flags.get("metrics-out") {
        let doc = loom_core::obs_export::metrics_json(&rec, None);
        std::fs::write(path, doc.render_pretty())
            .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = a.flags.get("bench-out") {
        let counters = rec.counters();
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        let mut fields = vec![
            ("workload", loom_obs::Json::from(w.nest.name())),
            (
                "candidates",
                loom_obs::Json::from(get("explore.candidates")),
            ),
            ("simulated", loom_obs::Json::from(get("explore.simulated"))),
            ("pruned", loom_obs::Json::from(get("explore.pruned"))),
            ("wall_us", loom_obs::Json::from(wall_us)),
            ("ranked", loom_obs::Json::from(best.len())),
        ];
        if cfg.symbolic.is_some() {
            fields.push((
                "symbolic_exact",
                loom_obs::Json::from(get("explore.symbolic.exact")),
            ));
            fields.push((
                "symbolic_fallback",
                loom_obs::Json::from(get("explore.symbolic.fallback")),
            ));
            fields.push((
                "symbolic_probe_points",
                loom_obs::Json::from(get("explore.symbolic.probe_points")),
            ));
        }
        let doc = loom_obs::Json::obj(fields);
        std::fs::write(path, doc.render_pretty())
            .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
        eprintln!("bench summary written to {path}");
    }
    if cfg.symbolic.is_some() {
        let counters = rec.counters();
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        eprintln!(
            "symbolic: {} exact, {} fallback, {} infeasible \
             ({} probe sims, {} probe points)",
            get("explore.symbolic.exact"),
            get("explore.symbolic.fallback"),
            get("explore.symbolic.infeasible"),
            get("explore.symbolic.probe_sims"),
            get("explore.symbolic.probe_points"),
        );
    }
    let mut t = Table::new([
        "rank", "Π", "grouping", "N", "blocks", "makespan", "messages",
    ]);
    for (i, c) in best.iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            format!("{:?}", c.pi),
            format!("D[{}]", c.grouping),
            format!("{}", 1usize << c.cube_dim),
            format!("{}", c.blocks),
            format!("{}", c.makespan),
            format!("{}", c.messages),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn cmd_profile(a: &Args) -> Result<(), CliError> {
    let w = pick_workload(a)?;
    let rec = obs_recorder();
    let cfg = PipelineConfig {
        time_fn: pi_flag(a)?.or(Some(w.pi.clone())),
        cube_dim: a.int_flag("cube", 1)?.max(0) as usize,
        target: pick_target(a)?,
        machine: None,
        ..Default::default()
    };
    // Stage by hand: the profiler needs the Program and SimConfig,
    // which PipelineOutput does not carry.
    let pipeline = Pipeline::new(w.nest.clone());
    let stage = pipeline
        .stage_partition(&cfg, &rec)
        .map_err(|e| CliError::failed(format!("pipeline failed: {e}")))?;
    let (_mapping, placement, target) = stage
        .map_with(&cfg, &rec)
        .map_err(|e| CliError::failed(format!("pipeline failed: {e}")))?;
    let program = stage.program(&placement);
    let sim_cfg = loom_machine::SimConfig {
        params: machine_params(a)?,
        topology: target.topology(),
        words_per_arc: 1,
        batch_messages: a.switch("batch"),
        link_contention: a.switch("contention"),
        record_trace: true,
        collect_metrics: true,
    };
    let report = {
        let _s = rec.span("pipeline.simulate");
        loom_machine::simulate(&program, &sim_cfg)
            .map_err(|e| CliError::failed(format!("simulation failed: {e}")))?
    };
    let k = a.int_flag("top", 3)?.max(1) as usize;
    let profile = {
        let _s = rec.span("profile.critical_path");
        loom_machine::critical_path_top_k(&program, &sim_cfg, &report, k)
            .map_err(|e| CliError::failed(format!("profiling failed: {e}")))?
    };
    if a.switch("json") {
        println!("{}", profile.to_json().render_pretty());
    } else {
        println!(
            "{} on {:?} ({} procs)",
            w.nest.name(),
            target,
            placement.num_procs()
        );
        print!("{}", profile.render_human());
    }
    let obs = a.obs_flags();
    if let Some(path) = &obs.trace_out {
        match loom_machine::trace::chrome_trace_annotated(
            &report,
            placement.num_procs(),
            Some(&profile),
        ) {
            Some(doc) => write_out(path, doc.render_pretty(), "annotated trace")?,
            None => {
                return Err(CliError::failed(
                    "internal error: no trace recorded despite profiling",
                ))
            }
        }
    }
    if let Some(path) = &obs.metrics_out {
        let doc = loom_core::obs_export::metrics_json(&rec, Some(&report));
        write_out(path, doc.render_pretty(), "metrics")?;
    }
    if let Some(path) = &obs.flame_out {
        write_flame(&rec, path)?;
    }
    flush_flight(&rec, "profile");
    Ok(())
}

/// Read + parse a JSON document for `loom obs diff` (size- and
/// depth-bounded: the inputs are untrusted).
fn read_json(path: &str) -> Result<Json, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
    Json::parse(&src).map_err(|e| CliError::usage(format!("{path}: invalid JSON: {e}")))
}

fn cmd_obs(a: &Args) -> Result<(), CliError> {
    let (old_path, new_path) =
        match (
            a.positional.first().map(String::as_str),
            a.positional.get(1),
            a.positional.get(2),
        ) {
            (Some("diff"), Some(old), Some(new)) => (old.clone(), new.clone()),
            _ => return Err(CliError::usage(
                "usage: loom obs diff <old.json> <new.json> [--threshold B] [--warn-only] [--json]",
            )),
        };
    let old = read_json(&old_path)?;
    let new = read_json(&new_path)?;
    let opts = loom_obs::DiffOptions {
        tolerance_buckets: a.int_flag("threshold", 1)?.max(0) as usize,
    };
    let report = loom_obs::diff::diff(&old, &new, &opts);
    if a.switch("json") {
        println!("{}", report.to_json().render_pretty());
    } else {
        let table = report.render_table();
        if table.is_empty() {
            println!(
                "no differences beyond noise ({} leaves compared)",
                report.compared
            );
        } else {
            print!("{table}");
        }
    }
    if report.has_regressions() {
        if a.switch("warn-only") {
            eprintln!("regressions found (exit 0: --warn-only)");
        } else {
            return Err(CliError::Diagnostics);
        }
    }
    Ok(())
}

fn cmd_table1(a: &Args) -> Result<(), CliError> {
    let m = a.int_flag("m", 1024)?.max(1) as u64;
    let params = machine_params(a)?;
    let mut t = Table::new(["N", "T_exec (symbolic)", "ticks"]);
    for (n, terms) in table1_rows(m) {
        t.row([
            format!("{n}"),
            terms.render(),
            format!("{}", terms.evaluate(&params)),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn main() {
    let a = args::parse(std::env::args().skip(1));
    let result = match a.command.as_deref() {
        Some("workloads") => {
            cmd_workloads();
            Ok(())
        }
        Some("partition") => cmd_partition(&a),
        Some("map") => cmd_map(&a),
        Some("simulate") | Some("sim") => cmd_simulate(&a),
        Some("codegen") => cmd_codegen(&a),
        Some("check") => cmd_check(&a),
        Some("viz") => cmd_viz(&a),
        Some("explore") => cmd_explore(&a),
        Some("profile") => cmd_profile(&a),
        Some("obs") => cmd_obs(&a),
        Some("table1") => cmd_table1(&a),
        _ => usage(),
    };
    if let Err(e) = result {
        e.render();
        std::process::exit(e.exit_code());
    }
}
