//! A8 — fault sweep: how much of the paper's predicted makespan
//! survives an unreliable machine.
//!
//! For every builtin workload this sweeps message-drop rates under the
//! retry policy, then fail-stops the busiest processor under the remap
//! policy, and reports makespan inflation against the fault-free run.
//! Everything is seeded, so the table is bit-reproducible.

use loom_bench::{maybe_write_metrics, partition_workload};
use loom_core::report::Table;
use loom_machine::{
    simulate, simulate_with_faults, FaultConfig, FaultPlan, MachineParams, Program, RecoveryPolicy,
    SimConfig, Topology,
};
use loom_mapping::map_partitioning;
use loom_obs::Json;

const SEED: u64 = 1991;
const DROP_RATES: [u32; 3] = [10, 50, 200];

fn main() {
    println!("A8 — deterministic fault sweep (seed {SEED})\n");
    let params = MachineParams::classic_1991();
    let mut t = Table::new([
        "workload",
        "procs",
        "fault-free",
        "scenario",
        "makespan",
        "inflation",
        "retries",
        "remapped",
    ]);
    let mut metrics_doc: Vec<(String, Json)> = Vec::new();
    for w in loom_workloads::all_default() {
        let p = partition_workload(&w);
        // Largest cube the block count supports, capped at 8 procs.
        let (cube_dim, mapping) = (0..=3)
            .rev()
            .find_map(|d| map_partitioning(&p, d).ok().map(|m| (d, m)))
            .expect("every workload fits some cube");
        let n = 1usize << cube_dim;
        let prog =
            Program::from_partitioning(&p, mapping.assignment(), n, w.nest.flops_per_iteration());
        let config = SimConfig {
            params,
            topology: Topology::Hypercube(cube_dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: false,
            collect_metrics: false,
        };
        let free = simulate(&prog, &config).expect("fault-free sim").makespan;
        let mut scenarios: Vec<(String, FaultConfig)> = DROP_RATES
            .iter()
            .map(|&rate| {
                (
                    format!("drop {rate}\u{2030}"),
                    FaultConfig::new(
                        FaultPlan::message_noise(SEED, rate, 0, 0),
                        RecoveryPolicy::RetryOnly,
                    ),
                )
            })
            .collect();
        // Fail-stop the processor owning the most tasks at tick 0 so the
        // remap path always has work to migrate.
        let busiest = (0..n)
            .max_by_key(|&q| {
                (
                    prog.proc_of.iter().filter(|&&r| r as usize == q).count(),
                    usize::MAX - q,
                )
            })
            .unwrap();
        scenarios.push((
            format!("crash P{busiest}+remap"),
            FaultConfig::new(
                FaultPlan::none().with_crash(busiest, 0),
                RecoveryPolicy::Remap,
            ),
        ));
        for (label, fc) in scenarios {
            let report = simulate_with_faults(&prog, &config, &fc)
                .unwrap_or_else(|e| panic!("{} under {label}: {e}", w.nest.name()));
            let deg = report.degradation.expect("faulted run reports degradation");
            assert_eq!(deg.baseline_makespan, free, "baseline mismatch");
            if label.starts_with("crash") && n > 1 {
                assert!(deg.remapped_tasks > 0, "crash must strand tasks");
                assert!(deg.state_transfer_words > 0, "remap must pay for state");
            }
            t.row([
                w.nest.name().to_string(),
                format!("{n}"),
                format!("{free}"),
                label.clone(),
                format!("{}", report.makespan),
                format!("{:+.1}%", 100.0 * deg.makespan_inflation()),
                format!("{}", deg.retries),
                format!("{}", deg.remapped_tasks),
            ]);
            metrics_doc.push((format!("{}_{label}", w.nest.name()), deg.to_json()));
        }
    }
    println!("{t}");
    maybe_write_metrics("a8_faults", &Json::Obj(metrics_doc.into_iter().collect()));
    println!(
        "expected shape: light drop rates cost a few retry timeouts; heavy rates\n\
         inflate makespan by whole backoff windows; a tick-0 crash costs one\n\
         state-transfer message plus the survivor's doubled workload."
    );
}
