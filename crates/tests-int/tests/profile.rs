//! Integration tests for the critical-path profiler, the flight
//! recorder, and the regression-diff observatory: attribution must be
//! conservative and exact on every builtin workload, reproduce the
//! paper's Table I decomposition for matvec, and the diff must gate a
//! seeded regression while passing identical inputs.

use loom_core::analytic;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::{critical_path, CriticalPathReport, MachineParams, SimConfig};
use loom_obs::{FlightRecorder, Json, Recorder};
use loom_workloads::Workload;

/// Stage the pipeline by hand (the profiler needs the `Program` and
/// `SimConfig`), simulate with trace + metrics on, and profile. Tries
/// cube dimensions 2 → 1 → 0 so small partitionings still map.
fn profile_workload(
    w: &Workload,
    params: MachineParams,
    link_contention: bool,
    cube_dims: &[usize],
) -> (u64, CriticalPathReport) {
    let rec = Recorder::disabled();
    let pipeline = Pipeline::new(w.nest.clone());
    for &cube_dim in cube_dims {
        let cfg = PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim,
            machine: None,
            ..Default::default()
        };
        let stage = pipeline.stage_partition(&cfg, &rec).expect("stages run");
        let Ok((_mapping, placement, target)) = stage.map_with(&cfg, &rec) else {
            continue;
        };
        let program = stage.program(&placement);
        let sim_cfg = SimConfig {
            params,
            topology: target.topology(),
            words_per_arc: 1,
            batch_messages: false,
            link_contention,
            record_trace: true,
            collect_metrics: true,
        };
        let report = loom_machine::simulate(&program, &sim_cfg).expect("simulates");
        let profile = critical_path(&program, &sim_cfg, &report).expect("profiles");
        return (report.makespan, profile);
    }
    panic!("{} mapped on no tried cube dimension", w.nest.name());
}

/// Attribution conservation: on every builtin workload — including a
/// software-receive machine and a contention-modeled run — the seven
/// components sum exactly to the makespan with zero residual, and the
/// per-processor + per-link tables re-tile the same total.
#[test]
fn attribution_sums_to_makespan_on_every_builtin_workload() {
    let variants: &[(MachineParams, bool)] = &[
        (MachineParams::classic_1991(), false),
        (MachineParams::classic_1991().with_recv(3), false),
        (MachineParams::classic_1991(), true),
    ];
    for w in loom_workloads::all_default() {
        for &(params, contention) in variants {
            let (makespan, profile) = profile_workload(&w, params, contention, &[2, 1, 0]);
            let name = w.nest.name();
            let ctx = format!("{name} t_recv={} contention={contention}", params.t_recv);
            assert_eq!(profile.makespan, makespan, "{ctx}");
            assert_eq!(profile.components.sum(), makespan, "{ctx}");
            assert_eq!(profile.components.fault_recovery, 0, "{ctx}");
            assert_eq!(profile.components.residual, 0, "{ctx}");
            let proc_sum: u64 = profile.per_proc.iter().map(|a| a.sum()).sum();
            let link_sum: u64 = profile.per_link.values().sum();
            assert_eq!(
                proc_sum + link_sum + profile.rerouted_ticks,
                makespan,
                "{ctx}: per-proc/per-link tables must re-tile the makespan"
            );
            assert!(!profile.paths.is_empty(), "{ctx}");
            assert_eq!(profile.paths[0].slack, 0, "{ctx}");
            for p in &profile.paths {
                assert_eq!(
                    p.components.sum(),
                    p.finish,
                    "{ctx}: path to {}",
                    p.end_task
                );
            }
        }
    }
}

/// Table I, `N = 1`: serial execution is pure compute — the profiler
/// attributes the entire makespan `2M²·t_calc` to the compute bucket.
#[test]
fn matvec_serial_profile_is_pure_compute() {
    let m = 16u64;
    let params = MachineParams {
        t_calc: 3,
        t_start: 50,
        t_comm: 5,
        t_recv: 0,
    };
    let w = loom_workloads::matvec::workload(m as i64);
    let (makespan, profile) = profile_workload(&w, params, false, &[0]);
    let expected = 2 * analytic::matvec_max_points(m, 1) * params.t_calc;
    assert_eq!(makespan, expected);
    assert_eq!(profile.components.compute, expected);
    assert_eq!(profile.components.sum(), expected);
    assert_eq!(profile.components.startup, 0);
    assert_eq!(profile.components.transit, 0);
    assert_eq!(profile.components.contention, 0);
    assert_eq!(profile.components.recv, 0);
}

/// Table I, `N = 4`: the paper decomposes
/// `T_exec = 2W·t_calc + (2M−2)·(t_start + t_comm)` — the profiled
/// critical path must show the same structure: a common message count
/// `b` behind both the startup and transit buckets with `b ≤ 2M−2`,
/// compute bounded by `2W·t_calc`, and nothing else.
#[test]
fn matvec_parallel_profile_matches_table_i_decomposition() {
    let m = 32u64;
    let params = MachineParams::classic_1991();
    let w = loom_workloads::matvec::workload(m as i64);
    let (makespan, profile) = profile_workload(&w, params, false, &[2]);
    let c = &profile.components;
    assert_eq!(c.compute + c.startup + c.transit, makespan);
    assert_eq!(c.contention, 0);
    assert_eq!(c.recv, 0);
    assert_eq!(c.fault_recovery, 0);
    assert_eq!(c.residual, 0);
    // One word per message: every path message contributes t_start to
    // startup and t_comm to transit per hop, so both buckets count the
    // same link crossings b.
    assert_eq!(c.startup % params.t_start, 0);
    assert_eq!(c.transit % params.t_comm, 0);
    let b = c.startup / params.t_start;
    assert_eq!(c.transit / params.t_comm, b);
    assert!(b >= 1, "a 4-processor run must communicate");
    assert!(
        b <= 2 * m - 2,
        "critical path crosses more links ({b}) than Table I's 2M-2 bound"
    );
    let two_w_tcalc = 2 * analytic::matvec_max_points(m, 4) * params.t_calc;
    assert!(
        c.compute <= two_w_tcalc,
        "critical-path compute {} exceeds the 2W·t_calc bound {two_w_tcalc}",
        c.compute
    );
}

/// The symbolic cost engine's compute/startup/transit decomposition
/// (`DeriveOptions::profile`) must agree with the PR 6 critical-path
/// profiler's attribution point-for-point on matvec — serial (`N = 1`,
/// pure compute, `2M²·t_calc`) and parallel (`N = 4`).
#[test]
fn symbolic_decomposition_matches_profiler_attribution_on_matvec() {
    use loom_core::symbolic_cost::{Derivation, DeriveOptions, ProbeCache};
    use loom_core::MachineOptions;
    let family = |n: i64| loom_workloads::matvec::workload(n).nest;
    let opts = DeriveOptions {
        profile: true,
        ..Default::default()
    };
    let rec = Recorder::disabled();
    let cases: &[(usize, MachineParams)] = &[
        (
            0,
            MachineParams {
                t_calc: 3,
                t_start: 50,
                t_comm: 5,
                t_recv: 0,
            },
        ),
        (2, MachineParams::classic_1991()),
    ];
    let target = 24i64;
    for &(cube_dim, params) in cases {
        let w = loom_workloads::matvec::workload(target);
        let cfg = PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim,
            machine: Some(MachineOptions {
                params,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut cache = ProbeCache::new();
        let derivation = Pipeline::new(w.nest.clone())
            .stage_symbolic_cost(&family, target, &cfg, &opts, &mut cache, &rec)
            .expect("symbolic stage runs");
        let Derivation::Exact(cost) = derivation else {
            panic!("matvec cube_dim={cube_dim} must derive exactly, got {derivation:?}");
        };
        let sym = cost.profile.as_ref().expect("profile requested");
        let base = cost.t_exec.base();
        for n in [base, base + 3, target] {
            let (makespan, profiled) = profile_workload(
                &loom_workloads::matvec::workload(n),
                params,
                false,
                &[cube_dim],
            );
            let c = &profiled.components;
            let ctx = format!("cube_dim={cube_dim} n={n}");
            assert_eq!(cost.makespan(n), Some(makespan), "{ctx}");
            assert_eq!(sym.compute.eval_u64(n), Some(c.compute), "{ctx}: compute");
            assert_eq!(sym.startup.eval_u64(n), Some(c.startup), "{ctx}: startup");
            assert_eq!(sym.transit.eval_u64(n), Some(c.transit), "{ctx}: transit");
            if cube_dim == 0 {
                // Table I, N = 1: the whole makespan is 2M²·t_calc of
                // compute — no communication terms at all.
                let pure = 2 * (n as u64) * (n as u64) * params.t_calc;
                assert_eq!(c.compute, pure, "{ctx}");
                assert_eq!(sym.startup.eval_u64(n), Some(0), "{ctx}");
                assert_eq!(sym.transit.eval_u64(n), Some(0), "{ctx}");
            } else {
                assert!(
                    c.startup > 0,
                    "{ctx}: a 4-processor matvec run must pay startup on the path"
                );
            }
        }
    }
}

/// The regression observatory: identical documents diff clean; a
/// seeded 10× timing inflation comes back as a gating regression that
/// names the inflated leaf.
#[test]
fn obs_diff_gates_a_seeded_regression_and_passes_identical_inputs() {
    use loom_obs::diff::diff;
    use loom_obs::DiffOptions;
    let doc = |explore_us: u64| {
        Json::obj(vec![
            ("bench", Json::from("explore")),
            (
                "entries",
                Json::Arr(vec![Json::obj(vec![
                    ("workload", Json::from("matvec")),
                    ("pi_bound", Json::from(2i64)),
                    ("explore_us", Json::from(explore_us)),
                    ("ranking_identical", Json::from(true)),
                ])]),
            ),
        ])
    };
    let old = doc(1200);
    let clean = diff(&old, &old, &DiffOptions::default());
    assert!(clean.findings.is_empty());
    assert!(!clean.has_regressions());
    assert!(clean.compared > 0);
    let bad = diff(&old, &doc(12000), &DiffOptions::default());
    assert!(bad.has_regressions());
    assert!(bad.findings.iter().any(|f| f.path.contains("explore_us")));
}

/// Flight-recorder smoke: a pipeline run through an enabled recorder
/// leaves schema-versioned JSONL events (spans mirrored in, `sim.done`
/// and `pipeline.done` markers) and a parseable collapsed-stack export.
#[test]
fn flight_recorder_and_flamegraph_capture_a_pipeline_run() {
    let w = loom_workloads::matvec::workload(8);
    let flight = FlightRecorder::with_capacity(512);
    let rec = Recorder::enabled_with_flight(flight.clone());
    Pipeline::new(w.nest.clone())
        .run_with(
            &PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 1,
                ..Default::default()
            },
            &rec,
        )
        .unwrap();
    let events = flight.events();
    assert!(events.iter().any(|e| e.kind == "span"));
    assert!(events.iter().any(|e| e.kind == "sim.done"));
    assert!(events.iter().any(|e| e.kind == "pipeline.done"));
    for line in flight.to_jsonl().lines() {
        let j = Json::parse(line).expect("every flight line is valid JSON");
        assert_eq!(j.get("v").and_then(Json::as_u64), Some(1));
    }
    let flame = loom_obs::flight::collapsed_stacks(&rec.spans());
    assert!(!flame.is_empty());
    assert!(flame.contains("pipeline."));
    for line in flame.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("line is `stack weight`");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("weight is an integer");
    }
}
