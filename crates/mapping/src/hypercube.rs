//! The binary n-cube interconnection topology.

/// An `n`-dimensional hypercube: `2ⁿ` processors, node `p` adjacent to
/// `p ^ (1 << k)` for each dimension `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: usize,
}

impl Hypercube {
    /// Build an `n`-cube. Panics above 30 dimensions (a billion nodes is
    /// outside this project's universe).
    pub fn new(dim: usize) -> Hypercube {
        assert!(dim <= 30, "hypercube dimension {dim} is unreasonable");
        Hypercube { dim }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of processors `N = 2ⁿ`.
    pub fn len(&self) -> usize {
        1 << self.dim
    }

    /// `true` iff the cube has one node (dimension 0 still has one).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `n` neighbors of a node.
    pub fn neighbors(&self, p: usize) -> Vec<usize> {
        assert!(p < self.len());
        (0..self.dim).map(|k| p ^ (1 << k)).collect()
    }

    /// Hamming distance — the routing distance between two nodes.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        assert!(a < self.len() && b < self.len());
        (a ^ b).count_ones() as usize
    }

    /// The e-cube (dimension-ordered) route from `a` to `b`, as the
    /// sequence of nodes visited including both endpoints.
    pub fn route(&self, a: usize, b: usize) -> Vec<usize> {
        assert!(a < self.len() && b < self.len());
        let mut path = vec![a];
        let mut cur = a;
        for k in 0..self.dim {
            let bit = 1 << k;
            if (cur ^ b) & bit != 0 {
                cur ^= bit;
                path.push(cur);
            }
        }
        path
    }

    /// The directed links of the e-cube route (pairs of adjacent nodes).
    pub fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        let path = self.route(a, b);
        path.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_structure() {
        let h = Hypercube::new(3);
        assert_eq!(h.len(), 8);
        assert_eq!(h.dim(), 3);
        let mut n = h.neighbors(0b101);
        n.sort();
        assert_eq!(n, vec![0b001, 0b100, 0b111]);
    }

    #[test]
    fn distances() {
        let h = Hypercube::new(4);
        assert_eq!(h.distance(0b0000, 0b1111), 4);
        assert_eq!(h.distance(0b1010, 0b1010), 0);
        assert_eq!(h.distance(0b0001, 0b0010), 2);
    }

    #[test]
    fn ecube_route_is_shortest_and_dimension_ordered() {
        let h = Hypercube::new(4);
        let path = h.route(0b0000, 0b1011);
        assert_eq!(path, vec![0b0000, 0b0001, 0b0011, 0b1011]);
        assert_eq!(path.len() - 1, h.distance(0b0000, 0b1011));
        for w in path.windows(2) {
            assert_eq!(h.distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn route_to_self_is_trivial() {
        let h = Hypercube::new(3);
        assert_eq!(h.route(5, 5), vec![5]);
        assert!(h.route_links(5, 5).is_empty());
    }

    #[test]
    fn zero_cube() {
        let h = Hypercube::new(0);
        assert_eq!(h.len(), 1);
        assert!(h.neighbors(0).is_empty());
    }
}
