//! Bring your own loop: parse a nest from source text, let the library
//! find Π, partition, map, simulate, and numerically verify — the full
//! journey a user's code takes through the `loom` front-end.
//!
//! ```text
//! cargo run --example custom_loop [path/to/nest.loom]
//! ```

use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, execute_in_order, sequential, trace_order};
use loom_loopir::parse::parse_nest;
use loom_loopir::Point;

const DEFAULT_SRC: &str = "
# A skewed two-statement recurrence the library has never seen:
for i = 0 to 11
for j = 0 to 11
  A[i+1, j+2] = A[i, j] + 2 * B[i, j];
  B[i+1, j]   = A[i, j+1] - 1;
";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("readable source file"),
        None => DEFAULT_SRC.to_string(),
    };
    let nest = match parse_nest("custom", &src) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!("{nest}");

    let out = Pipeline::new(nest.clone())
        .run(&PipelineConfig {
            cube_dim: 2,
            machine: Some(MachineOptions {
                record_trace: true,
                ..Default::default()
            }),
            ..Default::default() // time_fn: None → search for optimal Π
        })
        .expect("pipeline handles uniform nests");

    println!("extracted D = {:?}", out.deps);
    println!(
        "optimal {} found by search ({} steps); statement offsets {:?}",
        out.pi,
        out.pi.steps(nest.space()),
        out.stmt_offsets
    );
    println!(
        "{} blocks on {} processors; {} of {} arcs interblock",
        out.partitioning.num_blocks(),
        out.placement.num_procs(),
        out.comm.interblock_arcs,
        out.comm.total_arcs
    );
    let sim = out.sim.as_ref().unwrap();
    println!(
        "simulated: makespan {} ticks, {} messages",
        sim.makespan, sim.messages
    );

    // Replay the trace numerically and compare against sequential.
    let points: Vec<Point> = nest.space().points().collect();
    let order = trace_order(sim.trace.as_ref().unwrap());
    let parallel = execute_in_order(&nest, &points, &order, &out.deps, &address_hash_init)
        .expect("trace respects dependences");
    match equivalent(&parallel, &sequential(&nest, &address_hash_init)) {
        Ok(()) => println!("verified: parallel execution bit-identical to sequential"),
        Err(d) => println!("DIVERGED: {d:?}"),
    }
}
