//! The projection phase: `Q = (V, D)` → `Q^p = (V^p, D^p)`.

use crate::Error;
use loom_hyperplane::TimeFn;
use loom_loopir::{IterSpace, Point};
use loom_rational::QVec;
use std::collections::{BTreeMap, HashMap};

/// The computational structure `Q = (V, D)` of a nested loop
/// (Definition 2): the enumerated index set plus the dependence vectors.
#[derive(Clone, Debug)]
pub struct ComputationalStructure {
    space: IterSpace,
    points: Vec<Point>,
    index: HashMap<Point, usize>,
    deps: Vec<Point>,
}

impl ComputationalStructure {
    /// Enumerate a space and attach its dependence set.
    pub fn new(space: IterSpace, deps: Vec<Point>) -> Result<ComputationalStructure, Error> {
        let points: Vec<Point> = space.points().collect();
        if points.is_empty() {
            return Err(Error::EmptySpace);
        }
        let index = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        Ok(ComputationalStructure {
            space,
            points,
            index,
            deps,
        })
    }

    /// The iteration space.
    pub fn space(&self) -> &IterSpace {
        &self.space
    }

    /// All index points, in lexicographic order; a point's position in
    /// this slice is its id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The dependence set `D`.
    pub fn deps(&self) -> &[Point] {
        &self.deps
    }

    /// Number of iteration points `|V|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff there are no points (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Id of an index point, if it belongs to `V`.
    pub fn id_of(&self, p: &[i64]) -> Option<usize> {
        self.index.get(p).copied()
    }

    /// The point ids reachable from point `id` along each dependence
    /// (its out-neighbors in the dependence graph), with the dependence
    /// index that produced each arc.
    pub fn successors(&self, id: usize) -> Vec<(usize, usize)> {
        let p = &self.points[id];
        self.deps
            .iter()
            .enumerate()
            .filter_map(|(k, d)| {
                let q: Point = p.iter().zip(d).map(|(&a, &b)| a + b).collect();
                self.id_of(&q).map(|qid| (qid, k))
            })
            .collect()
    }

    /// Total number of dependence arcs in `Q` (33 for the paper's L1).
    pub fn num_arcs(&self) -> usize {
        (0..self.len()).map(|i| self.successors(i).len()).sum()
    }
}

/// The projected structure `Q^p = (V^p, D^p)` (Definition 5): the images
/// of `V` and `D` on the zero-hyperplane `Π·x = 0`.
#[derive(Clone, Debug)]
pub struct ProjectedStructure {
    pi: TimeFn,
    proj_points: Vec<QVec>,
    proj_index: BTreeMap<QVec, usize>,
    /// Original point ids on each projection line, sorted by execution step.
    members: Vec<Vec<usize>>,
    proj_deps: Vec<QVec>,
}

impl ProjectedStructure {
    /// Project a computational structure along Π (which must be legal for
    /// `cs.deps()`; legality is the caller's responsibility and checked by
    /// [`crate::partition`]).
    ///
    /// Implementation note: grouping points into projection lines uses
    /// the *scaled integer* projection `p·(Π·Π) − (p·Π)·Π ∈ ℤⁿ`, which
    /// identifies the same lines as the exact rational projection
    /// (`(Π·Π)` is a positive constant factor) without allocating a
    /// rational vector per iteration point; the rational coordinates are
    /// materialized once per distinct line.
    pub fn project(cs: &ComputationalStructure, pi: &TimeFn) -> ProjectedStructure {
        let pi_q = pi.as_qvec();
        let pi_coeffs = pi.coeffs();
        let pi_sq: i64 = pi_coeffs.iter().map(|&a| a * a).sum();
        assert!(pi_sq > 0, "zero time function");

        let mut scaled_index: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        // Assign projected-point ids in order of first appearance, then
        // re-sort members by time below.
        let mut proj_points: Vec<QVec> = Vec::new();
        let mut scaled = vec![0i64; cs.space().dim()];
        for (id, p) in cs.points().iter().enumerate() {
            let t = pi.time_of(p);
            for (k, out) in scaled.iter_mut().enumerate() {
                *out = p[k]
                    .checked_mul(pi_sq)
                    .and_then(|x| x.checked_sub(t * pi_coeffs[k]))
                    .expect("scaled projection overflow");
            }
            match scaled_index.get(&scaled) {
                Some(&pid) => members[pid].push(id),
                None => {
                    let pid = proj_points.len();
                    scaled_index.insert(scaled.clone(), pid);
                    proj_points.push(QVec::from_ints(p).project(&pi_q));
                    members.push(vec![id]);
                }
            }
        }
        let proj_index: BTreeMap<QVec, usize> = proj_points
            .iter()
            .enumerate()
            .map(|(pid, q)| (q.clone(), pid))
            .collect();
        for m in &mut members {
            m.sort_by_key(|&id| pi.time_of(&cs.points()[id]));
        }
        let proj_deps = cs
            .deps()
            .iter()
            .map(|d| QVec::from_ints(d).project(&pi_q))
            .collect();
        ProjectedStructure {
            pi: pi.clone(),
            proj_points,
            proj_index,
            members,
            proj_deps,
        }
    }

    /// The time function used as projection vector.
    pub fn time_fn(&self) -> &TimeFn {
        &self.pi
    }

    /// The distinct projected points `V^p`; position = projected-point id.
    pub fn points(&self) -> &[QVec] {
        &self.proj_points
    }

    /// Number of projected points `|V^p|` (37 for the paper's 4×4×4
    /// matmul with Π = (1,1,1)).
    pub fn len(&self) -> usize {
        self.proj_points.len()
    }

    /// `true` iff there are no projected points.
    pub fn is_empty(&self) -> bool {
        self.proj_points.is_empty()
    }

    /// Id of a projected point, if present.
    pub fn id_of(&self, q: &QVec) -> Option<usize> {
        self.proj_index.get(q).copied()
    }

    /// Original point ids lying on the projection line of projected point
    /// `pid`, sorted by execution step.
    pub fn line_members(&self, pid: usize) -> &[usize] {
        &self.members[pid]
    }

    /// The projected dependence vectors `D^p`, aligned index-for-index
    /// with the original dependence set.
    pub fn deps(&self) -> &[QVec] {
        &self.proj_deps
    }

    /// Indices of dependences whose projection is nonzero (dependences
    /// parallel to Π project to the zero vector and stay inside a single
    /// projection line).
    pub fn nonzero_dep_indices(&self) -> Vec<usize> {
        self.proj_deps
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_zero())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_rational::Ratio;

    fn l1() -> (ComputationalStructure, TimeFn) {
        let space = IterSpace::rect(&[4, 4]).unwrap();
        let deps = vec![vec![0, 1], vec![1, 1], vec![1, 0]];
        (
            ComputationalStructure::new(space, deps).unwrap(),
            TimeFn::new(vec![1, 1]),
        )
    }

    #[test]
    fn l1_arc_count_matches_paper() {
        // The paper: "the number of data dependencies between index
        // points is 33".
        let (cs, _) = l1();
        assert_eq!(cs.num_arcs(), 33);
    }

    #[test]
    fn l1_projection_has_seven_lines() {
        // Paper: seven projected points / projection lines for L1.
        let (cs, pi) = l1();
        let qp = ProjectedStructure::project(&cs, &pi);
        assert_eq!(qp.len(), 7);
        // The projected points include (−3/2, 3/2) … (3/2, −3/2).
        let q = |a: i64, b: i64| QVec::new(vec![Ratio::new(a, 2), Ratio::new(b, 2)]);
        for expected in [
            q(-3, 3),
            q(-2, 2),
            q(-1, 1),
            q(0, 0),
            q(1, -1),
            q(2, -2),
            q(3, -3),
        ] {
            assert!(qp.id_of(&expected).is_some(), "missing {expected}");
        }
        // Line membership counts: 1,2,3,4,3,2,1 in some order; total 16.
        let mut sizes: Vec<usize> = (0..7).map(|i| qp.line_members(i).len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 1, 2, 2, 3, 3, 4]);
    }

    #[test]
    fn l1_projected_deps_match_paper_fig3() {
        let (cs, pi) = l1();
        let qp = ProjectedStructure::project(&cs, &pi);
        let h = |a: i64, b: i64| QVec::new(vec![Ratio::new(a, 2), Ratio::new(b, 2)]);
        // d1 = (0,1) → (−1/2, 1/2); d2 = (1,1) → (0,0); d3 = (1,0) → (1/2, −1/2).
        assert_eq!(qp.deps()[0], h(-1, 1));
        assert!(qp.deps()[1].is_zero());
        assert_eq!(qp.deps()[2], h(1, -1));
        assert_eq!(qp.nonzero_dep_indices(), vec![0, 2]);
    }

    #[test]
    fn matmul_projection_has_37_points() {
        // Paper Fig. 5: 37 projected points for the 4×4×4 matmul.
        let space = IterSpace::rect(&[4, 4, 4]).unwrap();
        let deps = vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]];
        let cs = ComputationalStructure::new(space, deps).unwrap();
        let qp = ProjectedStructure::project(&cs, &TimeFn::wavefront(3));
        assert_eq!(qp.len(), 37);
        // Every original point lands on exactly one line.
        let total: usize = (0..qp.len()).map(|i| qp.line_members(i).len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn line_members_sorted_by_time() {
        let (cs, pi) = l1();
        let qp = ProjectedStructure::project(&cs, &pi);
        for pid in 0..qp.len() {
            let times: Vec<i64> = qp
                .line_members(pid)
                .iter()
                .map(|&id| pi.time_of(&cs.points()[id]))
                .collect();
            for w in times.windows(2) {
                assert!(w[0] < w[1], "line members not strictly time-ordered");
            }
        }
    }

    #[test]
    fn successors_respect_space_bounds() {
        let (cs, _) = l1();
        let corner = cs.id_of(&[3, 3]).unwrap();
        assert!(cs.successors(corner).is_empty());
        let origin = cs.id_of(&[0, 0]).unwrap();
        assert_eq!(cs.successors(origin).len(), 3);
    }

    #[test]
    fn empty_space_rejected() {
        let space = IterSpace::rect_bounds(&[1], &[0]).unwrap();
        assert_eq!(
            ComputationalStructure::new(space, vec![]).unwrap_err(),
            Error::EmptySpace
        );
    }
}
