//! Strip (block) partitioning — the obvious alternative the projection
//! method improves on.
//!
//! Cutting the iteration space into contiguous strips along one
//! dimension (the classic "block distribution", and the simplest form
//! of King & Ni-style grouping) also yields low interblock traffic —
//! but unlike Sheu–Tai blocks, a strip contains many iterations on the
//! *same* hyperplane, so placing it on one processor serializes work
//! the schedule wanted parallel. [`schedule_stretch`] quantifies that:
//! the paper's Theorem 1 guarantees stretch 1 for Algorithm 1's blocks,
//! while strips stretch proportionally to their width.

use crate::BaselineResult;
use loom_hyperplane::TimeFn;
use loom_partition::ComputationalStructure;
use std::collections::BTreeMap;

/// Partition into strips of `width` consecutive values of dimension
/// `dim` (0-based). Panics on a bad dimension or non-positive width.
pub fn partition(cs: &ComputationalStructure, dim: usize, width: i64) -> BaselineResult {
    assert!(dim < cs.space().dim(), "strip dimension out of range");
    assert!(width > 0, "strip width must be positive");
    let mut classes: BTreeMap<i64, usize> = BTreeMap::new();
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut block_of = vec![0usize; cs.len()];
    for (id, p) in cs.points().iter().enumerate() {
        let strip = p[dim].div_euclid(width);
        let bid = *classes.entry(strip).or_insert_with(|| {
            blocks.push(Vec::new());
            blocks.len() - 1
        });
        blocks[bid].push(id);
        block_of[id] = bid;
    }
    BaselineResult {
        method: "strip",
        blocks,
        block_of,
    }
}

/// The *schedule stretch* of a block decomposition under a time
/// function: the maximum, over blocks and steps, of the number of
/// same-step iterations a single block holds. A stretch of 1 means the
/// decomposition never serializes schedule-parallel work (the property
/// Theorem 1 proves for Algorithm 1's blocks); a stretch of `s` means
/// some processor needs `s` sub-steps where the schedule wanted one.
pub fn schedule_stretch(
    result: &BaselineResult,
    cs: &ComputationalStructure,
    pi: &TimeFn,
) -> usize {
    let mut worst = 0usize;
    for block in &result.blocks {
        let mut per_step: BTreeMap<i64, usize> = BTreeMap::new();
        for &id in block {
            *per_step.entry(pi.time_of(&cs.points()[id])).or_insert(0) += 1;
        }
        worst = worst.max(per_step.values().copied().max().unwrap_or(0));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_loopir::IterSpace;

    fn cs(sizes: &[i64], deps: Vec<Vec<i64>>) -> ComputationalStructure {
        ComputationalStructure::new(IterSpace::rect(sizes).unwrap(), deps).unwrap()
    }

    #[test]
    fn strips_cover_and_count() {
        let s = cs(&[8, 8], vec![vec![0, 1], vec![1, 0]]);
        let r = partition(&s, 0, 2);
        assert_eq!(r.num_blocks(), 4);
        let total: usize = r.blocks.iter().map(Vec::len).sum();
        assert_eq!(total, 64);
        assert!(r.blocks.iter().all(|b| b.len() == 16));
    }

    #[test]
    fn strips_have_bounded_traffic_but_stretch() {
        let s = cs(&[8, 8], vec![vec![0, 1], vec![1, 0]]);
        let pi = TimeFn::new(vec![1, 1]);
        let r = partition(&s, 0, 2);
        // Each strip of width 2 holds up to 2 same-step points.
        assert_eq!(schedule_stretch(&r, &s, &pi), 2);
        let wide = partition(&s, 0, 4);
        assert_eq!(schedule_stretch(&wide, &s, &pi), 4);
        // Sheu–Tai blocks have stretch exactly 1 (Theorem 1).
        let st = loom_partition::partition(
            s.space().clone(),
            s.deps().to_vec(),
            pi.clone(),
            &loom_partition::PartitionConfig::default(),
        )
        .unwrap();
        let st_result = BaselineResult {
            method: "sheu-tai",
            blocks: st.blocks().to_vec(),
            block_of: (0..s.len()).map(|id| st.block_of(id)).collect(),
        };
        assert_eq!(schedule_stretch(&st_result, &s, &pi), 1);
    }

    #[test]
    fn stretch_of_per_point_is_one() {
        let s = cs(&[4, 4], vec![vec![1, 0]]);
        let pi = TimeFn::new(vec![1, 1]);
        let pp = crate::serial::per_point(&s);
        assert_eq!(schedule_stretch(&pp, &s, &pi), 1);
        let one = crate::serial::one_block(&s);
        // One block holds a whole anti-diagonal: stretch = 4.
        assert_eq!(schedule_stretch(&one, &s, &pi), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_dim_panics() {
        let s = cs(&[4], vec![]);
        partition(&s, 1, 2);
    }
}
