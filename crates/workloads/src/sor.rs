//! A successive-over-relaxation / Gauss–Seidel style 2-D stencil.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// `A[i+1,j+1] := f(A[i,j], A[i,j+1], A[i+1,j])` over `rows × cols`.
///
/// The classic three-point recurrence with dependences
/// `{(0,1), (1,0), (1,1)}` — the same set as L1, but through a single
/// array and statement, and at arbitrary rectangular extents.
pub fn workload(rows: i64, cols: i64) -> Workload {
    let nest = LoopNest::new(
        "sor",
        IterSpace::rect(&[rows, cols]).expect("positive extents"),
        vec![Stmt::assign(
            Access::simple("A", 2, &[(0, 1), (1, 1)]),
            vec![
                Access::simple("A", 2, &[(0, 0), (1, 0)]),
                Access::simple("A", 2, &[(0, 0), (1, 1)]),
                Access::simple("A", 2, &[(0, 1), (1, 0)]),
            ],
        )
        .with_flops(4)
        .with_expr(Expr::mul(
            Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
            Expr::Const(1.0 / 3.0),
        ))],
    )
    .expect("sor is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 1], vec![1, 0], vec![1, 1]],
        pi: vec![1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(6, 6).verified_deps();
    }

    #[test]
    fn pi_legal() {
        assert!(workload(6, 6).pi_is_legal());
    }

    #[test]
    fn rectangular() {
        assert_eq!(workload(3, 7).nest.space().count(), 21);
    }
}
