//! The flight recorder: a bounded, structured-event ring buffer that
//! any run can leave behind as a replayable record.
//!
//! Wall-clock spans and counters ([`Recorder`](crate::Recorder)) answer
//! "how long did each phase take *this* run"; the flight recorder
//! answers "what happened, in order" — a capped sequence of typed
//! events (schema below) that the pipeline, the explorer pool, and the
//! simulator emit into, cheap enough to leave on in production-style
//! runs because the ring bounds memory no matter how long the run is.
//!
//! # Event schema (version 1)
//!
//! Each event renders as one compact JSON object per JSONL line:
//!
//! ```json
//! {"v":1,"seq":12,"ts_us":3401,"kind":"sim.done","makespan":96,"messages":4}
//! ```
//!
//! * `v` — schema version (this module bumps it on breaking changes),
//! * `seq` — monotonically increasing sequence number; gaps reveal
//!   events evicted by the ring,
//! * `ts_us` — µs since the recorder's creation,
//! * `kind` — dotted event name (`pipeline.stage`, `pool.map`,
//!   `sim.done`, `span`, …),
//! * remaining keys — event-specific fields.
//!
//! Export goes through [`FlightRecorder::to_jsonl`] or, gated on the
//! `LOOM_FLIGHT_DIR` environment variable,
//! [`FlightRecorder::flush_to_env_dir`] (one `<name>-<pid>.jsonl` file
//! per process, collision-safe under concurrent runs).
//!
//! The module also carries the span-aggregation pass over
//! [`SpanRecord`]s: [`aggregate_spans`] folds raw spans into per-stage
//! inclusive/exclusive-time summaries, and [`collapsed_stacks`] renders
//! the same nesting as collapsed-stack lines (`a;b;c <µs>`) that any
//! flamegraph renderer accepts.

use crate::json::Json;
use crate::recorder::SpanRecord;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version stamped into every event (`"v"`).
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// Default ring capacity when enabling via [`FlightRecorder::from_env`].
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number (0-based; gaps mean eviction).
    pub seq: u64,
    /// Microseconds since the recorder's creation.
    pub ts_us: u64,
    /// Dotted event name.
    pub kind: String,
    /// Event-specific fields, in emission order.
    pub fields: Vec<(String, Json)>,
}

impl FlightEvent {
    /// The event as a JSON object in the stable v1 shape.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v".to_string(), Json::from(FLIGHT_SCHEMA_VERSION)),
            ("seq".to_string(), Json::from(self.seq)),
            ("ts_us".to_string(), Json::from(self.ts_us)),
            ("kind".to_string(), Json::from(self.kind.as_str())),
        ];
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }
}

struct State {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    state: Mutex<State>,
}

/// A bounded structured-event recorder. Like
/// [`Recorder`](crate::Recorder) it is either enabled (shared storage)
/// or disabled (every call is one branch); clones share the ring.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FlightRecorder(disabled)"),
            Some(inner) => {
                let st = inner.state.lock().unwrap();
                write!(
                    f,
                    "FlightRecorder({} events, {} dropped, cap {})",
                    st.ring.len(),
                    st.dropped,
                    inner.capacity
                )
            }
        }
    }
}

impl FlightRecorder {
    /// A recorder that records nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// A live recorder keeping at most `capacity` events (oldest
    /// evicted first); capacity is clamped to at least 1.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                state: Mutex::new(State {
                    next_seq: 0,
                    dropped: 0,
                    ring: VecDeque::new(),
                }),
            })),
        }
    }

    /// Enabled with [`DEFAULT_CAPACITY`] iff the `LOOM_FLIGHT_DIR`
    /// environment variable is set, disabled otherwise — the switch the
    /// CLI and repro binaries use.
    pub fn from_env() -> FlightRecorder {
        match std::env::var_os("LOOM_FLIGHT_DIR") {
            Some(_) => FlightRecorder::with_capacity(DEFAULT_CAPACITY),
            None => FlightRecorder::disabled(),
        }
    }

    /// `true` iff this recorder stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. Field order is preserved; the `v`/`seq`/
    /// `ts_us`/`kind` envelope is added automatically.
    pub fn emit(&self, kind: &str, fields: &[(&str, Json)]) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            let mut st = inner.state.lock().unwrap();
            let seq = st.next_seq;
            st.next_seq += 1;
            if st.ring.len() == inner.capacity {
                st.ring.pop_front();
                st.dropped += 1;
            }
            st.ring.push_back(FlightEvent {
                seq,
                ts_us,
                kind: kind.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().unwrap().ring.len())
            .unwrap_or(0)
    }

    /// `true` iff no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().unwrap().dropped)
            .unwrap_or(0)
    }

    /// Snapshot of the held events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().unwrap().ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The held events as JSONL: one compact object per line, prefixed
    /// by a `flight.header` line carrying capacity and drop count.
    pub fn to_jsonl(&self) -> String {
        let header = Json::obj(vec![
            ("v", Json::from(FLIGHT_SCHEMA_VERSION)),
            ("kind", Json::from("flight.header")),
            ("capacity", {
                let cap = self.inner.as_ref().map(|i| i.capacity).unwrap_or(0);
                Json::from(cap)
            }),
            ("dropped", Json::from(self.dropped())),
            ("events", Json::from(self.len())),
        ]);
        let mut out = header.render();
        out.push('\n');
        for ev in self.events() {
            out.push_str(&ev.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL export to `<dir>/<name>-<pid>.jsonl` (the pid
    /// discriminator keeps concurrent processes from clobbering each
    /// other). Returns the path written.
    pub fn flush_to_dir(
        &self,
        dir: &std::path::Path,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}-{}.jsonl", name, std::process::id()));
        std::fs::write(&path, self.to_jsonl())?;
        Ok(path)
    }

    /// [`flush_to_dir`](FlightRecorder::flush_to_dir) into
    /// `LOOM_FLIGHT_DIR`, a no-op returning `None` when the variable is
    /// unset or the recorder is disabled.
    pub fn flush_to_env_dir(&self, name: &str) -> Option<std::path::PathBuf> {
        if !self.is_enabled() {
            return None;
        }
        let dir = std::env::var_os("LOOM_FLIGHT_DIR")?;
        self.flush_to_dir(std::path::Path::new(&dir), name).ok()
    }
}

/// Per-stage time summary produced by [`aggregate_spans`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// Span name.
    pub name: String,
    /// How many spans carried this name.
    pub count: u64,
    /// Total inclusive µs (children included).
    pub total_us: u64,
    /// Total exclusive µs: inclusive minus the time spent in directly
    /// nested spans (saturating — concurrent children, e.g. pool
    /// workers inside one parent, can overlap their parent).
    pub exclusive_us: u64,
}

/// Reconstructed nesting: for each span (in the sorted order used by
/// the aggregation), the chain of enclosing span names ending in the
/// span's own name, plus its exclusive µs.
fn span_stacks(spans: &[SpanRecord]) -> Vec<(Vec<String>, u64)> {
    // Sort outermost-first: earlier start wins, longer duration wins at
    // equal starts, name breaks exact ties deterministically.
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by(|a, b| {
        (a.start_us, std::cmp::Reverse(a.dur_us), &a.name).cmp(&(
            b.start_us,
            std::cmp::Reverse(b.dur_us),
            &b.name,
        ))
    });
    let contains = |outer: &SpanRecord, inner: &SpanRecord| {
        outer.start_us <= inner.start_us
            && inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us
    };
    // Sweep with an ancestor stack of (index into `out`, span).
    let mut out: Vec<(Vec<String>, u64)> = Vec::with_capacity(sorted.len());
    let mut stack: Vec<(usize, &SpanRecord)> = Vec::new();
    for span in sorted {
        while let Some(&(_, top)) = stack.last() {
            if contains(top, span) {
                break;
            }
            stack.pop();
        }
        let mut names: Vec<String> = stack
            .last()
            .map(|&(i, _)| out[i].0.clone())
            .unwrap_or_default();
        names.push(span.name.clone());
        // Charge this span's inclusive time against the parent's
        // exclusive time.
        if let Some(&(i, _)) = stack.last() {
            out[i].1 = out[i].1.saturating_sub(span.dur_us);
        }
        out.push((names, span.dur_us));
        stack.push((out.len() - 1, span));
    }
    out
}

/// Fold raw spans into per-name inclusive/exclusive summaries, sorted
/// by descending exclusive time (name breaks ties).
pub fn aggregate_spans(spans: &[SpanRecord]) -> Vec<StageSummary> {
    let mut by_name: std::collections::BTreeMap<String, StageSummary> = Default::default();
    for (names, exclusive) in span_stacks(spans) {
        let name = names.last().expect("stack never empty").clone();
        let entry = by_name.entry(name.clone()).or_insert_with(|| StageSummary {
            name,
            count: 0,
            total_us: 0,
            exclusive_us: 0,
        });
        entry.count += 1;
        entry.exclusive_us += exclusive;
    }
    // Inclusive totals come straight from the records.
    for s in spans {
        if let Some(entry) = by_name.get_mut(&s.name) {
            entry.total_us += s.dur_us;
        }
    }
    let mut out: Vec<StageSummary> = by_name.into_values().collect();
    out.sort_by(|a, b| {
        (std::cmp::Reverse(a.exclusive_us), &a.name)
            .cmp(&(std::cmp::Reverse(b.exclusive_us), &b.name))
    });
    out
}

/// Render spans as collapsed-stack lines (`outer;inner <µs>`), the
/// input format of every flamegraph renderer (e.g. inferno, speedscope,
/// `flamegraph.pl`). Counts are exclusive µs; zero-weight stacks are
/// dropped; lines are sorted for deterministic output.
pub fn collapsed_stacks(spans: &[SpanRecord]) -> String {
    let mut weights: std::collections::BTreeMap<String, u64> = Default::default();
    for (names, exclusive) in span_stacks(spans) {
        if exclusive > 0 {
            *weights.entry(names.join(";")).or_insert(0) += exclusive;
        }
    }
    let mut out = String::new();
    for (stack, w) in weights {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let f = FlightRecorder::disabled();
        f.emit("x", &[("a", Json::from(1u64))]);
        assert!(!f.is_enabled());
        assert!(f.is_empty());
        assert_eq!(f.dropped(), 0);
        assert!(f.events().is_empty());
        // JSONL still renders a valid header.
        let first = f.to_jsonl().lines().next().unwrap().to_string();
        let h = Json::parse(&first).unwrap();
        assert_eq!(h.get("kind").unwrap().as_str(), Some("flight.header"));
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let f = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            f.emit("tick", &[("i", Json::from(i))]);
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.dropped(), 2);
        let evs = f.events();
        // Oldest two evicted; sequence numbers survive eviction.
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(evs[0].fields[0].1, Json::from(2u64));
    }

    #[test]
    fn jsonl_is_parseable_line_by_line() {
        let f = FlightRecorder::with_capacity(8);
        f.emit("sim.done", &[("makespan", Json::from(96u64))]);
        f.emit("pool.map", &[("tasks", Json::from(10u64))]);
        let jsonl = f.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(header.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(header.get("events").unwrap().as_u64(), Some(2));
        let ev = Json::parse(lines[1]).unwrap();
        assert_eq!(ev.get("kind").unwrap().as_str(), Some("sim.done"));
        assert_eq!(ev.get("makespan").unwrap().as_u64(), Some(96));
        assert_eq!(ev.get("seq").unwrap().as_u64(), Some(0));
        assert_eq!(
            Json::parse(lines[2]).unwrap().get("seq").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn clones_share_the_ring() {
        let f = FlightRecorder::with_capacity(4);
        let clone = f.clone();
        clone.emit("a", &[]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn flush_to_dir_is_pid_discriminated() {
        let f = FlightRecorder::with_capacity(4);
        f.emit("a", &[]);
        let dir = std::env::temp_dir().join(format!("loom-flight-test-{}", std::process::id()));
        let path = f.flush_to_dir(&dir, "run").unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains(&std::process::id().to_string()));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn span(name: &str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            start_us,
            dur_us,
        }
    }

    #[test]
    fn aggregation_computes_exclusive_time() {
        // total [0,100] containing partition [10,40] and simulate
        // [50,90]; partition contains two deps spans.
        let spans = vec![
            span("pipeline.total", 0, 100),
            span("pipeline.partition", 10, 30),
            span("pipeline.deps", 12, 5),
            span("pipeline.deps", 20, 5),
            span("pipeline.simulate", 50, 40),
        ];
        let agg = aggregate_spans(&spans);
        let get = |n: &str| agg.iter().find(|s| s.name == n).unwrap().clone();
        assert_eq!(get("pipeline.total").total_us, 100);
        assert_eq!(get("pipeline.total").exclusive_us, 100 - 30 - 40);
        assert_eq!(get("pipeline.partition").exclusive_us, 30 - 10);
        assert_eq!(get("pipeline.deps").count, 2);
        assert_eq!(get("pipeline.deps").total_us, 10);
        assert_eq!(get("pipeline.deps").exclusive_us, 10);
        // Exclusive times tile the root exactly.
        let sum: u64 = agg.iter().map(|s| s.exclusive_us).sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn collapsed_stacks_nest_and_sum() {
        let spans = vec![
            span("total", 0, 100),
            span("inner", 10, 30),
            span("leaf", 15, 5),
        ];
        let out = collapsed_stacks(&spans);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec!["total 70", "total;inner 25", "total;inner;leaf 5"]
        );
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn aggregation_handles_empty_and_concurrent_overlap() {
        assert!(aggregate_spans(&[]).is_empty());
        assert_eq!(collapsed_stacks(&[]), "");
        // Two pool workers overlap inside one parent: exclusive time
        // saturates instead of underflowing.
        let spans = vec![
            span("explore.total", 0, 50),
            span("pool.worker.0", 5, 40),
            span("pool.worker.1", 6, 41),
        ];
        let agg = aggregate_spans(&spans);
        let root = agg.iter().find(|s| s.name == "explore.total").unwrap();
        assert!(root.exclusive_us <= 50);
    }
}
