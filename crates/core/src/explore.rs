//! Configuration exploration: let the cost model choose the compile.
//!
//! The paper fixes Π and the grouping vector by hand; a compiler has to
//! *choose* them. [`explore`] sweeps the legal time transformations
//! within a coefficient bound, every maximal grouping-vector choice, and
//! the requested machine sizes, simulates each configuration, and ranks
//! by makespan. Deterministic: ties break toward smaller Π, smaller
//! grouping index, smaller machine.

use crate::pipeline::{MachineOptions, Pipeline, PipelineConfig, PipelineError};
use loom_hyperplane::TimeFn;
use loom_loopir::{DepOptions, LoopNest};

/// One explored configuration and its simulated outcome.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The time transformation.
    pub pi: Vec<i64>,
    /// The grouping-vector index (into the dependence set).
    pub grouping: usize,
    /// Hypercube dimension.
    pub cube_dim: usize,
    /// Simulated makespan.
    pub makespan: u64,
    /// Messages sent.
    pub messages: u64,
    /// Number of blocks.
    pub blocks: usize,
}

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Π coefficients searched in `[-bound, bound]`.
    pub pi_bound: i64,
    /// Keep only the `top` best candidates (0 = all).
    pub top: usize,
    /// Machine options used for every simulation.
    pub machine: MachineOptions,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            pi_bound: 1,
            top: 10,
            machine: MachineOptions::default(),
        }
    }
}

/// Enumerate legal Π within the bound, sorted by (steps, L1 norm, lex).
fn legal_pis(nest: &LoopNest, deps: &[Vec<i64>], bound: i64) -> Vec<Vec<i64>> {
    let n = nest.dim();
    let mut out = Vec::new();
    let mut coeffs = vec![-bound; n];
    loop {
        let pi = TimeFn::new(coeffs.clone());
        if pi.is_legal_for(deps) {
            out.push(coeffs.clone());
        }
        let mut k = n;
        loop {
            if k == 0 {
                out.sort_by_key(|c| {
                    let pi = TimeFn::new(c.clone());
                    (
                        pi.steps(nest.space()),
                        c.iter().map(|x| x.abs()).sum::<i64>(),
                        c.clone(),
                    )
                });
                return out;
            }
            k -= 1;
            if coeffs[k] < bound {
                coeffs[k] += 1;
                for c in &mut coeffs[k + 1..] {
                    *c = -bound;
                }
                break;
            }
        }
    }
}

/// Explore configurations for a nest across the given hypercube
/// dimensions; returns candidates ranked by simulated makespan.
///
/// Configurations whose mapping fails (machine larger than the block
/// count) are skipped silently; other pipeline failures propagate.
pub fn explore(
    nest: &LoopNest,
    cube_dims: &[usize],
    config: &ExploreConfig,
) -> Result<Vec<Candidate>, PipelineError> {
    let deps = loom_loopir::deps::dependence_vectors(nest, DepOptions::default())
        .map_err(PipelineError::Deps)?;
    let pis = legal_pis(nest, &deps, config.pi_bound);
    let mut results: Vec<Candidate> = Vec::new();
    for pi in &pis {
        for grouping in 0..deps.len() {
            for &cube_dim in cube_dims {
                let run = Pipeline::new(nest.clone()).run(&PipelineConfig {
                    time_fn: Some(pi.clone()),
                    cube_dim,
                    partition: loom_partition::PartitionConfig {
                        grouping_choice: Some(grouping),
                        seed: None,
                    },
                    machine: Some(config.machine.clone()),
                    ..Default::default()
                });
                match run {
                    Ok(out) => {
                        let sim = out.sim.expect("machine enabled");
                        results.push(Candidate {
                            pi: pi.clone(),
                            grouping,
                            cube_dim,
                            makespan: sim.makespan,
                            messages: sim.messages,
                            blocks: out.partitioning.num_blocks(),
                        });
                    }
                    // Grouping choice not maximal, or cube too large:
                    // legitimate skips during exploration.
                    Err(PipelineError::Partition(_)) | Err(PipelineError::Mapping(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    results.sort_by_key(|c| {
        (
            c.makespan,
            c.pi.iter().map(|x| x.abs()).sum::<i64>(),
            c.pi.clone(),
            c.grouping,
            c.cube_dim,
        )
    });
    if config.top > 0 {
        results.truncate(config.top);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_machine::MachineParams;

    fn cfg() -> ExploreConfig {
        ExploreConfig {
            pi_bound: 1,
            top: 5,
            machine: MachineOptions {
                params: MachineParams::low_latency(),
                ..Default::default()
            },
        }
    }

    #[test]
    fn explores_and_ranks_matvec() {
        let w = loom_workloads::matvec::workload(12);
        let best = explore(&w.nest, &[1, 2], &cfg()).unwrap();
        assert!(!best.is_empty());
        // Ranked ascending by makespan.
        for pair in best.windows(2) {
            assert!(pair[0].makespan <= pair[1].makespan);
        }
        // The winner must beat (or match) the canonical configuration.
        let canonical = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(cfg().machine),
                ..Default::default()
            })
            .unwrap()
            .sim
            .unwrap()
            .makespan;
        assert!(best[0].makespan <= canonical);
    }

    #[test]
    fn respects_top_limit() {
        let w = loom_workloads::l1::workload(4);
        let best = explore(&w.nest, &[0, 1], &cfg()).unwrap();
        assert!(best.len() <= 5);
    }

    #[test]
    fn legal_pis_sorted_and_legal() {
        let w = loom_workloads::sor::workload(5, 5);
        let deps = w.verified_deps();
        let pis = legal_pis(&w.nest, &deps, 1);
        assert!(!pis.is_empty());
        for pi in &pis {
            assert!(TimeFn::new(pi.clone()).is_legal_for(&deps));
        }
        // First candidate minimizes steps.
        let steps: Vec<i64> = pis
            .iter()
            .map(|c| TimeFn::new(c.clone()).steps(w.nest.space()))
            .collect();
        assert!(steps[0] <= *steps.last().unwrap());
        assert_eq!(pis[0], vec![1, 1]);
    }
}
