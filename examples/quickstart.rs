//! Quickstart: run the paper's loop (L1) through the whole pipeline.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loom_core::{Pipeline, PipelineConfig};

fn main() {
    // The paper's running example:
    //   for i = 0 to 3
    //     for j = 0 to 3
    //       S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
    //       S2: B[i+1,j]   := A[i,j] * 2 + C;
    let w = loom_workloads::l1::workload(4);
    println!("{}", w.nest);

    let out = Pipeline::new(w.nest.clone())
        .run(&PipelineConfig {
            cube_dim: 1, // map onto a 2-processor hypercube
            ..Default::default()
        })
        .expect("L1 is uniform and the pipeline handles it");

    println!("dependence vectors D = {:?}", out.deps);
    println!(
        "time transformation {} ({} steps)",
        out.pi,
        out.pi.steps(w.nest.space())
    );
    println!();

    let p = &out.partitioning;
    println!(
        "Algorithm 1: {} projected points -> {} groups of up to r = {} lines",
        p.projected().len(),
        p.num_blocks(),
        p.vectors().r
    );
    for (b, block) in p.blocks().iter().enumerate() {
        let pts: Vec<String> = block
            .iter()
            .map(|&id| format!("{:?}", p.structure().points()[id]))
            .collect();
        println!("  block B{b}: {}", pts.join(" "));
    }
    println!(
        "dependence arcs: {} total, {} interblock ({}%)",
        out.comm.total_arcs,
        out.comm.interblock_arcs,
        (100.0 * out.comm.interblock_fraction()).round()
    );
    println!();

    println!(
        "Algorithm 2: block -> processor map on a {}-cube:",
        out.mapping.cube().dim()
    );
    for (b, &proc) in out.mapping.assignment().iter().enumerate() {
        println!(
            "  B{b} -> P{proc:0width$b}",
            width = out.mapping.cube().dim().max(1)
        );
    }
    println!();

    let sim = out.sim.expect("simulation requested");
    println!("simulated execution (classic 1991 machine):");
    println!("  makespan        = {} ticks", sim.makespan);
    println!("  compute/proc    = {:?}", sim.compute);
    println!("  comm/proc       = {:?}", sim.comm);
    println!("  messages, words = {}, {}", sim.messages, sim.words);
}
