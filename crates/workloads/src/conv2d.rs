//! 2-D convolution — a *four*-deep nest, exercising the pipeline beyond
//! the paper's 2- and 3-dimensional examples.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};

/// `y[i,j] += h[k,l] · x[i−k, j−l]` over `out × out` outputs and
/// `taps × taps` kernel taps (loop order `i, j, k, l`).
///
/// Dependences: the `y` accumulation runs over `(k, l)` — generators
/// `(0,0,1,0)` and `(0,0,0,1)`; the kernel `h[k,l]` is reused across
/// outputs — `(1,0,0,0)` and `(0,1,0,0)`; the input pixel `x[i−k,j−l]`
/// is reused along `(1,0,1,0)` and `(0,1,0,1)`. Six dependence vectors,
/// projected rank 3 under `Π = (1,1,1,1)`.
pub fn workload(out: i64, taps: i64) -> Workload {
    let n = 4;
    let xi = Aff::var(n, 0) - Aff::var(n, 2); // i − k
    let xj = Aff::var(n, 1) - Aff::var(n, 3); // j − l
    let nest = LoopNest::new(
        "conv2d",
        IterSpace::rect(&[out, out, taps, taps]).expect("positive extents"),
        vec![Stmt::assign(
            Access::simple("y", n, &[(0, 0), (1, 0)]),
            vec![
                Access::simple("y", n, &[(0, 0), (1, 0)]),
                Access::simple("h", n, &[(2, 0), (3, 0)]),
                Access::new("x", vec![xi, xj]),
            ],
        )
        .with_flops(2)
        .with_expr(Expr::add(
            Expr::Read(0),
            Expr::mul(Expr::Read(1), Expr::Read(2)),
        ))],
    )
    .expect("conv2d is well-formed");
    Workload {
        nest,
        deps: vec![
            vec![0, 0, 0, 1],
            vec![0, 0, 1, 0],
            vec![0, 1, 0, 0],
            vec![0, 1, 0, 1],
            vec![1, 0, 0, 0],
            vec![1, 0, 1, 0],
        ],
        pi: vec![1, 1, 1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(4, 2).verified_deps();
    }

    #[test]
    fn pi_legal() {
        assert!(workload(4, 2).pi_is_legal());
    }

    #[test]
    fn four_deep() {
        let w = workload(3, 2);
        assert_eq!(w.nest.dim(), 4);
        assert_eq!(w.nest.space().count(), 3 * 3 * 2 * 2);
    }
}
