//! Rules `LC005` and `LC007` — static data-race detection over the
//! generated SPMD program.
//!
//! Nothing is executed. The analysis builds the happens-before order
//! the program's synchronization induces — per-processor program order
//! plus one edge per matched `Send`/`Recv` pair — with vector clocks,
//! then evaluates every statement's affine access functions at every
//! `Compute` op and flags any two accesses to the same array element
//! that (a) run on different processors, (b) are unordered by
//! happens-before, and (c) include at least one write. Because the
//! programs `loom-codegen` emits synchronize *every* dependence (anti
//! and output dependences carry no payload but still send their tag),
//! a correctly generated program is race-free; a reported race means
//! the program, partition, or schedule is wrong.
//!
//! The message-matching fixpoint also proves deadlock-freedom along the
//! way: a `Recv` whose message never materializes blocks its processor
//! forever and is reported as `LC007` at error severity, while a
//! message that is sent but never received is `LC007` at warning
//! severity (wasteful, and usually a symptom of a mismatched program).

use crate::diag::{Diagnostic, RuleId, Span};
use loom_codegen::{Op, SpmdProgram, Tag};
use loom_loopir::LoopNest;
use std::collections::BTreeMap;

/// One executed `Compute`, with the vector clock at its occurrence.
struct ComputeEvent {
    proc: usize,
    point: u32,
    clock: Vec<u64>,
}

/// `true` iff event `a` happens before event `b` (or they are the same
/// logical time on one processor — program order handles that case
/// before we ever compare).
fn happens_before(a: &ComputeEvent, b: &ComputeEvent) -> bool {
    a.clock[a.proc] <= b.clock[a.proc]
}

fn fmt_point(p: &[i64]) -> String {
    let parts: Vec<String> = p.iter().map(|x| x.to_string()).collect();
    format!("({})", parts.join(","))
}

/// Run the happens-before analysis and the per-element race scan.
pub fn check_races(nest: &LoopNest, program: &SpmdProgram) -> Vec<Diagnostic> {
    let n = program.num_procs();
    let mut out = Vec::new();

    // Phase 1: propagate vector clocks to a fixpoint. Each processor
    // advances through its op list until it blocks on an unsatisfied
    // Recv; Sends deposit a clock snapshot keyed by (from, to, tag) and
    // Recvs join it. BTreeMap keeps the scan deterministic.
    let mut ip = vec![0usize; n];
    let mut clock: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut mailbox: BTreeMap<(u32, u32, Tag), Vec<u64>> = BTreeMap::new();
    let mut computes: Vec<ComputeEvent> = Vec::new();
    loop {
        let mut progressed = false;
        for p in 0..n {
            while ip[p] < program.per_proc[p].len() {
                match program.per_proc[p][ip[p]] {
                    Op::Recv { from, tag } => match mailbox.remove(&(from, p as u32, tag)) {
                        Some(snapshot) => {
                            for (c, s) in clock[p].iter_mut().zip(&snapshot) {
                                *c = (*c).max(*s);
                            }
                        }
                        None => break,
                    },
                    Op::Compute { point } => {
                        clock[p][p] += 1;
                        computes.push(ComputeEvent {
                            proc: p,
                            point,
                            clock: clock[p].clone(),
                        });
                    }
                    Op::Send { to, tag } => {
                        clock[p][p] += 1;
                        mailbox.insert((p as u32, to, tag), clock[p].clone());
                    }
                }
                ip[p] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Phase 2: LC007. Anything still blocked is a Recv whose message
    // can never arrive — the program deadlocks there. Messages left in
    // the mailbox were sent but never consumed.
    let mut deadlocked = false;
    for (p, &stuck_at) in ip.iter().enumerate() {
        if stuck_at < program.per_proc[p].len() {
            if let Op::Recv { from, tag } = program.per_proc[p][stuck_at] {
                deadlocked = true;
                out.push(Diagnostic::error(
                    RuleId::UnmatchedMessage,
                    Span::ProgramOp {
                        proc: p as u32,
                        op: stuck_at,
                    },
                    format!(
                        "receive of message (source point {}, dep {}) from P{from} \
                         can never be satisfied; the program deadlocks here",
                        tag.src_point, tag.dep
                    ),
                ));
            }
        }
    }
    for (from, to, tag) in mailbox.into_keys() {
        out.push(Diagnostic::warning(
            RuleId::UnmatchedMessage,
            Span::Nest,
            format!(
                "message (source point {}, dep {}) from P{from} to P{to} \
                 is sent but never received",
                tag.src_point, tag.dep
            ),
        ));
    }
    if deadlocked {
        // Computes past the deadlock never happen; a race verdict over
        // the partial order would be misleading.
        return out;
    }

    // Phase 3: LC005. Index every access by (array, element) and test
    // cross-processor pairs with at least one write for happens-before.
    let points = &program.points;
    // Access list per element: (compute-event index, is-write).
    type AccessList = Vec<(usize, bool)>;
    let mut accesses: BTreeMap<(&str, Vec<i64>), AccessList> = BTreeMap::new();
    for (ei, ev) in computes.iter().enumerate() {
        let point = &points[ev.point as usize];
        for stmt in nest.stmts() {
            let w = stmt.write();
            accesses
                .entry((w.array(), w.element_at(point)))
                .or_default()
                .push((ei, true));
            for r in stmt.reads() {
                accesses
                    .entry((r.array(), r.element_at(point)))
                    .or_default()
                    .push((ei, false));
            }
        }
    }
    for ((array, element), accs) in &accesses {
        if !accs.iter().any(|&(_, write)| write) {
            continue;
        }
        'element: for (i, &(a, wa)) in accs.iter().enumerate() {
            for &(b, wb) in &accs[i + 1..] {
                if !(wa || wb) {
                    continue;
                }
                let (ea, eb) = (&computes[a], &computes[b]);
                if ea.proc == eb.proc {
                    continue; // ordered by program order
                }
                if happens_before(ea, eb) || happens_before(eb, ea) {
                    continue;
                }
                out.push(Diagnostic::error(
                    RuleId::DataRace,
                    Span::Element {
                        array: (*array).to_string(),
                        element: element.clone(),
                    },
                    format!(
                        "{} at iteration {} on P{} and {} at iteration {} on P{} \
                         are concurrent: no synchronization orders them",
                        if wa { "write" } else { "read" },
                        fmt_point(&points[ea.point as usize]),
                        ea.proc,
                        if wb { "write" } else { "read" },
                        fmt_point(&points[eb.point as usize]),
                        eb.proc,
                    ),
                ));
                // One diagnostic per racing element keeps reports
                // readable; the first unordered pair is representative.
                break 'element;
            }
        }
    }
    dedupe(out)
}

/// Drop repeated diagnostics, keeping first-occurrence order.
///
/// The scan phases can surface the same fact more than once — e.g. a
/// racing pair found through two statements that access the same
/// element — and rendering the identical (rule, severity, span,
/// message) tuple twice only pads the report.
fn dedupe(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut seen = std::collections::BTreeSet::new();
    diags
        .into_iter()
        .filter(|d| seen.insert((d.rule, d.severity, d.span.to_string(), d.message.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_codegen::generate;
    use loom_hyperplane::TimeFn;
    use loom_mapping::map_partitioning;
    use loom_partition::{partition, PartitionConfig};

    fn l1_program() -> (LoopNest, SpmdProgram) {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let m = map_partitioning(&p, 1).unwrap();
        let cg = generate(&w.nest, &p, m.assignment(), 2).unwrap();
        (w.nest, cg.program)
    }

    #[test]
    fn generated_program_is_race_free() {
        let (nest, program) = l1_program();
        assert_eq!(check_races(&nest, &program), vec![]);
    }

    #[test]
    fn removed_send_deadlocks() {
        let (nest, mut program) = l1_program();
        let (p, i) = program
            .per_proc
            .iter()
            .enumerate()
            .find_map(|(p, ops)| {
                ops.iter()
                    .position(|op| matches!(op, Op::Send { .. }))
                    .map(|i| (p, i))
            })
            .expect("a cross-processor program has sends");
        program.per_proc[p].remove(i);
        let ds = check_races(&nest, &program);
        assert!(
            ds.iter().any(|d| d.rule == RuleId::UnmatchedMessage
                && d.severity == crate::Severity::Error),
            "{ds:?}"
        );
    }

    #[test]
    fn injected_duplicate_compute_races() {
        // Recompute some point on the *other* processor with no
        // synchronization: its writes collide with the original's.
        let (nest, mut program) = l1_program();
        let point = program.per_proc[0]
            .iter()
            .find_map(|op| match op {
                Op::Compute { point } => Some(*point),
                _ => None,
            })
            .unwrap();
        program.per_proc[1].insert(0, Op::Compute { point });
        let ds = check_races(&nest, &program);
        assert!(
            ds.iter()
                .any(|d| d.rule == RuleId::DataRace && d.severity == crate::Severity::Error),
            "{ds:?}"
        );
    }

    #[test]
    fn identical_diagnostics_are_deduplicated() {
        let d = |msg: &str| {
            Diagnostic::error(
                RuleId::DataRace,
                Span::Element {
                    array: "A".to_string(),
                    element: vec![1, 2],
                },
                msg.to_string(),
            )
        };
        let deduped = dedupe(vec![d("same"), d("same"), d("other"), d("same")]);
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped[0].message, "same");
        assert_eq!(deduped[1].message, "other");
        // Same message under a different span survives.
        let mut w = d("same");
        w.span = Span::Nest;
        assert_eq!(dedupe(vec![d("same"), w]).len(), 2);
    }

    #[test]
    fn orphan_send_warns() {
        let (nest, mut program) = l1_program();
        program.per_proc[0].push(Op::Send {
            to: 1,
            tag: Tag {
                src_point: 0,
                dep: 999,
            },
        });
        let ds = check_races(&nest, &program);
        assert!(ds.iter().all(|d| d.severity != crate::Severity::Error));
        assert!(
            ds.iter()
                .any(|d| d.rule == RuleId::UnmatchedMessage
                    && d.severity == crate::Severity::Warning),
            "{ds:?}"
        );
    }
}
