//! Phase I of Algorithm 2: cluster formation by recursive bisection.

use crate::Error;
use loom_rational::Ratio;

/// The result of recursively bisecting the blocks `n` times: `2ⁿ`
/// clusters, each with its per-direction split path.
#[derive(Clone, Debug)]
pub struct ClusterFormation {
    /// Block ids per cluster, in cluster-address order
    /// (see [`ClusterFormation::addresses`]).
    pub clusters: Vec<Vec<usize>>,
    /// The hypercube address of each cluster (concatenated per-direction
    /// Gray codes, Phase II Step 1 of Algorithm 2).
    pub addresses: Vec<u64>,
    /// How many times each direction was split (`p_i`; Σ p_i = n).
    pub splits_per_dir: Vec<u32>,
    /// Each cluster's binary chunk coordinate along every direction
    /// (first split = most significant bit). Unlike `addresses`, these
    /// are plain binary ranks, which non-hypercube allocators (mesh,
    /// ring) consume directly.
    pub coords: Vec<Vec<u64>>,
}

/// Recursively bisect blocks into `2^cube_dim` equal-size clusters.
///
/// `positions[b][i]` is block `b`'s scalar coordinate along bisection
/// direction `i` (for a partitioning: the group base vertex dotted with
/// the grouping / auxiliary grouping vector ḡᵢ). Directions are used
/// round-robin (`i = j mod β`), as in the paper. Ties are broken by
/// block id so the formation is deterministic.
///
/// Per the paper's assumption the number of blocks must be at least the
/// number of processors; otherwise `Error::CubeTooLarge` is returned.
pub fn form_clusters(positions: &[Vec<Ratio>], cube_dim: usize) -> Result<ClusterFormation, Error> {
    let ndirs = positions.first().map_or(0, Vec::len);
    let schedule: Vec<usize> = (0..cube_dim).map(|j| j % ndirs.max(1)).collect();
    form_clusters_with_schedule(positions, &schedule)
}

/// Like [`form_clusters`], but with an explicit per-split direction
/// schedule (`schedule[j]` is the direction of the `j`-th bisection).
/// Used by the mesh/ring allocators, which need specific split counts
/// per direction rather than the paper's round robin.
pub fn form_clusters_with_schedule(
    positions: &[Vec<Ratio>],
    schedule: &[usize],
) -> Result<ClusterFormation, Error> {
    let cube_dim = schedule.len();
    let blocks = positions.len();
    if blocks == 0 {
        return Err(Error::BadPositions);
    }
    let ndirs = positions[0].len();
    if ndirs == 0
        || positions.iter().any(|p| p.len() != ndirs)
        || schedule.iter().any(|&d| d >= ndirs)
    {
        return Err(Error::BadPositions);
    }
    if blocks < (1usize << cube_dim) {
        return Err(Error::CubeTooLarge { blocks, cube_dim });
    }

    // Each in-flight cluster carries its ids and per-direction bit path.
    struct Cluster {
        ids: Vec<usize>,
        path: Vec<Vec<bool>>, // path[dir] = split bits, first split first
    }
    let mut clusters = vec![Cluster {
        ids: (0..blocks).collect(),
        path: vec![Vec::new(); ndirs],
    }];
    let mut splits_per_dir = vec![0u32; ndirs];

    for &i in schedule {
        splits_per_dir[i] += 1;
        let mut next = Vec::with_capacity(clusters.len() * 2);
        for mut c in clusters {
            c.ids
                .sort_by(|&a, &b| positions[a][i].cmp(&positions[b][i]).then(a.cmp(&b)));
            let low_len = c.ids.len() / 2;
            let high = c.ids.split_off(low_len);
            let mut low_path = c.path.clone();
            low_path[i].push(false);
            let mut high_path = c.path;
            high_path[i].push(true);
            next.push(Cluster {
                ids: c.ids,
                path: low_path,
            });
            next.push(Cluster {
                ids: high,
                path: high_path,
            });
        }
        clusters = next;
    }

    // Phase II Step 1: per-direction Gray codes, concatenated with
    // direction 0 most significant.
    let mut out_clusters = Vec::with_capacity(clusters.len());
    let mut addresses = Vec::with_capacity(clusters.len());
    let mut all_coords = Vec::with_capacity(clusters.len());
    for c in clusters {
        let mut addr: u64 = 0;
        let mut coords = vec![0u64; ndirs];
        for i in 0..ndirs {
            let p = splits_per_dir[i];
            let mut coord: u64 = 0;
            for &bit in &c.path[i] {
                coord = (coord << 1) | bit as u64;
            }
            coords[i] = coord;
            if p > 0 {
                addr = (addr << p) | crate::gray::gray(coord);
            }
        }
        out_clusters.push(c.ids);
        addresses.push(addr);
        all_coords.push(coords);
    }
    Ok(ClusterFormation {
        clusters: out_clusters,
        addresses,
        splits_per_dir,
        coords: all_coords,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Positions of a `rows × cols` mesh of unit blocks, row-major:
    /// direction 0 = x (column), direction 1 = y (row).
    fn mesh_positions(rows: usize, cols: usize) -> Vec<Vec<Ratio>> {
        let mut pos = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                pos.push(vec![Ratio::int(c as i64), Ratio::int(r as i64)]);
            }
        }
        pos
    }

    #[test]
    fn paper_fig8_mesh_onto_3_cube() {
        // A 4×4 mesh TIG divided 3 times → 8 clusters of 2 blocks.
        let pos = mesh_positions(4, 4);
        let cf = form_clusters(&pos, 3).unwrap();
        assert_eq!(cf.clusters.len(), 8);
        assert!(cf.clusters.iter().all(|c| c.len() == 2));
        // Round-robin over 2 directions, 3 splits: p = [2, 1].
        assert_eq!(cf.splits_per_dir, vec![2, 1]);
        // Addresses are a permutation of 0..8.
        let mut a = cf.addresses.clone();
        a.sort();
        assert_eq!(a, (0..8).collect::<Vec<u64>>());
        // Each cluster's two blocks are mesh-adjacent (vertical pairs):
        for c in &cf.clusters {
            let diff = (c[0] as i64 - c[1] as i64).abs();
            assert!(diff == 4 || diff == 1, "cluster {c:?} not adjacent");
        }
    }

    #[test]
    fn gray_adjacency_along_directions() {
        // Clusters adjacent along one direction must have addresses that
        // differ in exactly one bit (the point of the Gray numbering).
        let pos = mesh_positions(8, 8);
        let cf = form_clusters(&pos, 4).unwrap(); // p = [2, 2]
        assert_eq!(cf.splits_per_dir, vec![2, 2]);
        // Reconstruct each cluster's (x-chunk, y-chunk) coordinates from
        // its blocks: blocks 8r + c with x-chunk = c / 2, y-chunk = r / 2.
        let coord_of = |cluster: &Vec<usize>| {
            let b = cluster[0];
            ((b % 8) / 2, (b / 8) / 2)
        };
        for (ci, c1) in cf.clusters.iter().enumerate() {
            for (cj, c2) in cf.clusters.iter().enumerate() {
                let (x1, y1) = coord_of(c1);
                let (x2, y2) = coord_of(c2);
                let manhattan = x1.abs_diff(x2) + y1.abs_diff(y2);
                if manhattan == 1 {
                    let hamming = (cf.addresses[ci] ^ cf.addresses[cj]).count_ones();
                    assert_eq!(hamming, 1, "neighbor chunks not cube-adjacent");
                }
            }
        }
    }

    #[test]
    fn equal_size_with_exact_power() {
        let pos: Vec<Vec<Ratio>> = (0..16).map(|i| vec![Ratio::int(i)]).collect();
        let cf = form_clusters(&pos, 2).unwrap();
        assert_eq!(cf.clusters.len(), 4);
        assert!(cf.clusters.iter().all(|c| c.len() == 4));
        // One direction, split twice.
        assert_eq!(cf.splits_per_dir, vec![2]);
        // 1-D Gray order: cluster of smallest positions → address 0, next
        // → 1, then 3, 2.
        let addr_of_block0 = cf
            .clusters
            .iter()
            .position(|c| c.contains(&0))
            .map(|i| cf.addresses[i])
            .unwrap();
        assert_eq!(addr_of_block0, 0);
        let addr_of_block15 = cf
            .clusters
            .iter()
            .position(|c| c.contains(&15))
            .map(|i| cf.addresses[i])
            .unwrap();
        assert_eq!(addr_of_block15, 0b10); // last Gray word of 2 bits
    }

    #[test]
    fn uneven_sizes_stay_balanced() {
        let pos: Vec<Vec<Ratio>> = (0..10).map(|i| vec![Ratio::int(i)]).collect();
        let cf = form_clusters(&pos, 2).unwrap();
        let mut sizes: Vec<usize> = cf.clusters.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2, 3, 3]);
    }

    #[test]
    fn too_small_rejected() {
        let pos: Vec<Vec<Ratio>> = (0..3).map(|i| vec![Ratio::int(i)]).collect();
        assert_eq!(
            form_clusters(&pos, 2).unwrap_err(),
            Error::CubeTooLarge {
                blocks: 3,
                cube_dim: 2
            }
        );
    }

    #[test]
    fn bad_positions_rejected() {
        assert_eq!(form_clusters(&[], 1).unwrap_err(), Error::BadPositions);
        let ragged = vec![vec![Ratio::int(0)], vec![]];
        assert_eq!(form_clusters(&ragged, 0).unwrap_err(), Error::BadPositions);
    }

    #[test]
    fn zero_dim_cube_single_cluster() {
        let pos: Vec<Vec<Ratio>> = (0..5).map(|i| vec![Ratio::int(i)]).collect();
        let cf = form_clusters(&pos, 0).unwrap();
        assert_eq!(cf.clusters.len(), 1);
        assert_eq!(cf.clusters[0].len(), 5);
        assert_eq!(cf.addresses, vec![0]);
    }
}
