//! Affine expressions over the loop indices.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `c + Σ coeffs[k] · I_k` over `n` loop indices.
///
/// Used both for array subscripts (`A[i+1, j]`) and for loop bounds that
/// may reference outer indices (`for j = 0 to i`).
///
/// ```
/// use loom_loopir::Aff;
/// let i = Aff::var(2, 0); // index I_0 of a 2-deep nest
/// let e = i + 1;          // i + 1
/// assert_eq!(e.eval(&[3, 9]), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Aff {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Aff {
    /// The constant expression `c` over an `n`-index nest.
    pub fn constant(n: usize, c: i64) -> Aff {
        Aff {
            coeffs: vec![0; n],
            constant: c,
        }
    }

    /// The single index variable `I_k` of an `n`-index nest.
    ///
    /// Panics if `k >= n`.
    pub fn var(n: usize, k: usize) -> Aff {
        assert!(k < n, "index variable {k} out of range for {n}-deep nest");
        let mut coeffs = vec![0; n];
        coeffs[k] = 1;
        Aff {
            coeffs,
            constant: 0,
        }
    }

    /// Build from explicit coefficients and constant.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Aff {
        Aff { coeffs, constant }
    }

    /// Number of indices this expression ranges over.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of index `k`.
    pub fn coeff(&self, k: usize) -> i64 {
        self.coeffs[k]
    }

    /// All coefficients.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// `true` iff the expression has no index terms.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// The highest index (0-based) with a nonzero coefficient, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.coeffs.iter().rposition(|&c| c != 0)
    }

    /// Evaluate at an index point. Panics on dimension mismatch.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.dim(), "eval on wrong-arity point");
        self.constant
            + self
                .coeffs
                .iter()
                .zip(point)
                .map(|(&c, &x)| c * x)
                .sum::<i64>()
    }

    /// `true` iff the linear (non-constant) parts of two expressions match.
    pub fn same_linear_part(&self, other: &Aff) -> bool {
        self.coeffs == other.coeffs
    }
}

impl Add<i64> for Aff {
    type Output = Aff;
    fn add(mut self, c: i64) -> Aff {
        self.constant += c;
        self
    }
}

impl Sub<i64> for Aff {
    type Output = Aff;
    fn sub(mut self, c: i64) -> Aff {
        self.constant -= c;
        self
    }
}

impl Add for Aff {
    type Output = Aff;
    fn add(self, rhs: Aff) -> Aff {
        assert_eq!(self.dim(), rhs.dim(), "add of mismatched affine arity");
        Aff {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + rhs.constant,
        }
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self + (-rhs)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(self) -> Aff {
        Aff {
            coeffs: self.coeffs.into_iter().map(|c| -c).collect(),
            constant: -self.constant,
        }
    }
}

impl Mul<i64> for Aff {
    type Output = Aff;
    fn mul(self, k: i64) -> Aff {
        Aff {
            coeffs: self.coeffs.into_iter().map(|c| c * k).collect(),
            constant: self.constant * k,
        }
    }
}

impl fmt::Debug for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: &[&str] = &["i", "j", "k", "l", "m", "n"];
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = NAMES.get(k).copied().unwrap_or("x");
            let sub = if k >= NAMES.len() {
                format!("{name}{k}")
            } else {
                name.to_string()
            };
            if first {
                match c {
                    1 => write!(f, "{sub}")?,
                    -1 => write!(f, "-{sub}")?,
                    _ => write!(f, "{c}{sub}")?,
                }
                first = false;
            } else {
                let sign = if c < 0 { '-' } else { '+' };
                let mag = c.abs();
                if mag == 1 {
                    write!(f, "{sign}{sub}")?;
                } else {
                    write!(f, "{sign}{mag}{sub}")?;
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            let sign = if self.constant < 0 { '-' } else { '+' };
            write!(f, "{sign}{}", self.constant.abs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_arith() {
        let n = 3;
        let i = Aff::var(n, 0);
        let k = Aff::var(n, 2);
        let e = i.clone() + 1;
        assert_eq!(e.eval(&[4, 0, 0]), 5);
        let s = (i.clone() + 2) - (k.clone() - 1);
        assert_eq!(s.eval(&[10, 0, 3]), 10 + 2 - 3 + 1);
        let m = i * 3;
        assert_eq!(m.eval(&[2, 0, 0]), 6);
        assert_eq!((-k).eval(&[0, 0, 7]), -7);
    }

    #[test]
    fn structure_queries() {
        let e = Aff::new(vec![1, 0, -2], 5);
        assert_eq!(e.dim(), 3);
        assert_eq!(e.coeff(2), -2);
        assert_eq!(e.constant_term(), 5);
        assert!(!e.is_constant());
        assert_eq!(e.max_var(), Some(2));
        assert!(Aff::constant(3, 9).is_constant());
        assert_eq!(Aff::constant(3, 9).max_var(), None);
    }

    #[test]
    fn same_linear_part() {
        let a = Aff::new(vec![1, 1], 0);
        let b = Aff::new(vec![1, 1], -4);
        let c = Aff::new(vec![1, 0], 0);
        assert!(a.same_linear_part(&b));
        assert!(!a.same_linear_part(&c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range() {
        Aff::var(2, 2);
    }

    #[test]
    fn display() {
        let n = 2;
        assert_eq!((Aff::var(n, 0) + 1).to_string(), "i+1");
        assert_eq!((Aff::var(n, 1) - 3).to_string(), "j-3");
        assert_eq!(Aff::constant(n, 0).to_string(), "0");
        assert_eq!(
            (Aff::var(n, 0) * -1 + Aff::var(n, 1) * 2).to_string(),
            "-i+2j"
        );
    }
}
