//! Rule `LC015` — block/buffer access bounds by interval abstract
//! interpretation over the generated SPMD program.
//!
//! The interleaving model checker ([`crate::interleave`]) trusts the
//! program's indices: a corrupted `Compute` op naming a nonexistent
//! iteration point would crash the interpreter rather than produce a
//! verdict. This pass runs first and proves three layers of bounds:
//!
//! 1. **Structural** — every op index (iteration-point ids, processor
//!    ids, dependence indices in tags) names something that exists.
//! 2. **Containment** — every entry of the shared iteration table lies
//!    inside the nest's iteration space.
//! 3. **Access image** — for every affine array access of the nest
//!    body, the subscript values produced by the iterations each
//!    processor computes stay inside a *proven* interval hull. The
//!    candidate hull comes from interval arithmetic over the space's
//!    bounding box (corner evaluation is exact for affine forms); the
//!    Presburger core then certifies it by refuting
//!    `x ∈ space ∧ f(x) ≥ hi + 1` and `x ∈ space ∧ f(x) ≤ lo − 1`.
//!    A certified hull is **size-parametric** — the same Fourier–
//!    Motzkin refutation closes the bound for the symbolic constraint
//!    system, not for one enumeration — and is counted as
//!    `check.absint.parametric`; when the core answers `Unknown` the
//!    hull is recomputed by enumerating the space (exact but
//!    instance-bound), counted as `check.absint.enumerated`.

use crate::diag::{Diagnostic, RuleId, Span};
use crate::presburger::{System, Verdict};
use loom_codegen::gen::Codegen;
use loom_codegen::ops::Op;
use loom_loopir::{Aff, IterSpace, LoopNest};

/// How `LC015` discharged its proof obligations (surfaced as
/// `check.absint.*`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbsintStats {
    /// Hulls certified by the Presburger core (size-parametric).
    pub parametric: u64,
    /// Hulls recomputed by enumerating the space (concrete fallback).
    pub enumerated: u64,
    /// Subscript positions checked in total.
    pub checked: u64,
}

/// A closed integer interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Itv {
    lo: i64,
    hi: i64,
}

impl Itv {
    fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// The exact image interval of an affine form over a box: evaluate at
/// the corner selected per-coordinate by coefficient sign.
fn aff_over_box(f: &Aff, bx: &[(i64, i64)]) -> Itv {
    let mut lo = f.constant_term();
    let mut hi = lo;
    for (k, &(l, h)) in bx.iter().enumerate() {
        let c = f.coeff(k);
        if c >= 0 {
            lo = lo.saturating_add(c.saturating_mul(l));
            hi = hi.saturating_add(c.saturating_mul(h));
        } else {
            lo = lo.saturating_add(c.saturating_mul(h));
            hi = hi.saturating_add(c.saturating_mul(l));
        }
    }
    Itv { lo, hi }
}

/// Add the space's affine bound constraints `lowerⱼ(x) ≤ xⱼ ≤ upperⱼ(x)`
/// to `sys`.
fn constrain_space(sys: &mut System, space: &IterSpace) {
    let n = space.dim();
    for j in 0..n {
        let lower = space.lower(j);
        let mut c: Vec<i64> = (0..n).map(|k| -lower.coeff(k)).collect();
        c[j] += 1;
        sys.ge0(&c, -lower.constant_term());
        let upper = space.upper(j);
        let mut c: Vec<i64> = (0..n).map(|k| upper.coeff(k)).collect();
        c[j] -= 1;
        sys.ge0(&c, upper.constant_term());
    }
}

/// `true` iff the Presburger core *proves* `bound` contains the image
/// of `f` over `space`: both escape systems must be `Unsat`
/// (an `Unknown` is not a proof).
fn certified(space: &IterSpace, f: &Aff, bound: Itv) -> bool {
    let n = space.dim();
    // f(x) ≥ hi + 1  ⇔  Σ cₖxₖ + (c₀ − hi − 1) ≥ 0
    let mut above = System::new(n);
    constrain_space(&mut above, space);
    above.ge0(
        f.coeffs(),
        f.constant_term().saturating_sub(bound.hi).saturating_sub(1),
    );
    if above.solve() != Verdict::Unsat {
        return false;
    }
    // f(x) ≤ lo − 1  ⇔  Σ −cₖxₖ + (lo − 1 − c₀) ≥ 0
    let neg: Vec<i64> = f.coeffs().iter().map(|&c| -c).collect();
    let mut below = System::new(n);
    constrain_space(&mut below, space);
    below.ge0(
        &neg,
        bound.lo.saturating_sub(1).saturating_sub(f.constant_term()),
    );
    below.solve() == Verdict::Unsat
}

/// The exact hull by walking the space (concrete fallback).
fn enumerated_hull(space: &IterSpace, f: &Aff) -> Option<Itv> {
    let mut out: Option<Itv> = None;
    for p in space.points() {
        let v = f.eval(&p);
        out = Some(match out {
            None => Itv { lo: v, hi: v },
            Some(itv) => Itv {
                lo: itv.lo.min(v),
                hi: itv.hi.max(v),
            },
        });
    }
    out
}

fn ints(p: &[i64]) -> String {
    let inner = p
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("({inner})")
}

/// Run the `LC015` bounds analysis over a generated program.
pub fn check_block_bounds(
    nest: &LoopNest,
    cg: &Codegen,
    stats: &mut AbsintStats,
) -> Vec<Diagnostic> {
    let prog = &cg.program;
    let n_procs = prog.num_procs();
    let n_points = prog.points.len();
    let n_deps = cg.payload_specs.len();
    let mut out = Vec::new();

    // Layer 1: structural op-index bounds.
    for (p, ops) in prog.per_proc.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            let span = Span::ProgramOp {
                proc: p as u32,
                op: i,
            };
            let bad_tag = |tag: &loom_codegen::ops::Tag, out: &mut Vec<Diagnostic>| {
                if tag.src_point as usize >= n_points {
                    out.push(Diagnostic::error(
                        RuleId::BlockAccessBounds,
                        span.clone(),
                        format!(
                            "{} tag names source point {} but the iteration table has {} entries",
                            op.kind(),
                            tag.src_point,
                            n_points
                        ),
                    ));
                }
                if tag.dep as usize >= n_deps {
                    out.push(Diagnostic::error(
                        RuleId::BlockAccessBounds,
                        span.clone(),
                        format!(
                            "{} tag names dependence {} but the nest has {} payload specs",
                            op.kind(),
                            tag.dep,
                            n_deps
                        ),
                    ));
                }
            };
            match op {
                Op::Compute { point } => {
                    if *point as usize >= n_points {
                        out.push(Diagnostic::error(
                            RuleId::BlockAccessBounds,
                            span,
                            format!(
                                "compute names point {point} but the iteration table has {n_points} entries"
                            ),
                        ));
                    }
                }
                Op::Send { to, tag } => {
                    if *to as usize >= n_procs {
                        out.push(Diagnostic::error(
                            RuleId::BlockAccessBounds,
                            span.clone(),
                            format!("send targets P{to} but the machine has {n_procs} processors"),
                        ));
                    }
                    bad_tag(tag, &mut out);
                }
                Op::Recv { from, tag } => {
                    if *from as usize >= n_procs {
                        out.push(Diagnostic::error(
                            RuleId::BlockAccessBounds,
                            span.clone(),
                            format!(
                                "recv expects a message from P{from} but the machine has {n_procs} processors"
                            ),
                        ));
                    }
                    bad_tag(tag, &mut out);
                }
            }
        }
    }

    // Layer 2: the shared iteration table is inside the space.
    let space = nest.space();
    for (id, pt) in prog.points.iter().enumerate() {
        if pt.len() != space.dim() || !space.contains(pt) {
            out.push(Diagnostic::error(
                RuleId::BlockAccessBounds,
                Span::Nest,
                format!(
                    "iteration-table entry {id} = {} lies outside the iteration space",
                    ints(pt)
                ),
            ));
        }
    }
    if !out.is_empty() {
        // Layer 3 evaluates subscripts at table entries; with the
        // table itself unsound the hulls would be meaningless.
        return out;
    }

    // Layer 3: access-image hulls, certified or enumerated.
    let bx = space.bounding_box();
    let mut obligations: Vec<(&str, &Aff)> = Vec::new();
    for stmt in nest.stmts() {
        for access in stmt.accesses() {
            for f in access.subscripts() {
                obligations.push((access.array(), f));
            }
        }
    }
    for (array, f) in obligations {
        stats.checked += 1;
        let candidate = aff_over_box(f, &bx);
        let bound = if certified(space, f, candidate) {
            stats.parametric += 1;
            candidate
        } else {
            stats.enumerated += 1;
            match enumerated_hull(space, f) {
                Some(h) => h,
                None => continue, // empty space: nothing to bound
            }
        };
        for p in 0..n_procs {
            for id in prog.computes_of(p) {
                let point = &prog.points[id as usize];
                let v = f.eval(point);
                if !bound.contains(v) {
                    out.push(Diagnostic::error(
                        RuleId::BlockAccessBounds,
                        Span::ProgramOp {
                            proc: p as u32,
                            op: 0,
                        },
                        format!(
                            "P{p} computes iteration {} whose {array} subscript evaluates to {v}, \
                             outside the proven hull [{}, {}]",
                            ints(point),
                            bound.lo,
                            bound.hi
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_obs::Recorder;

    use loom_hyperplane::TimeFn;
    use loom_mapping::map_partitioning;
    use loom_partition::{partition, PartitionConfig};

    fn sample() -> (LoopNest, Codegen) {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let m = map_partitioning(&p, 1).unwrap();
        let cg = loom_codegen::generate(&w.nest, &p, m.assignment(), 2).unwrap();
        (w.nest, cg)
    }

    #[test]
    fn pristine_program_is_in_bounds_and_parametric() {
        let (nest, cg) = sample();
        let mut stats = AbsintStats::default();
        let diags = check_block_bounds(&nest, &cg, &mut stats);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(stats.checked > 0);
        assert!(
            stats.parametric > 0,
            "rectangular bounds must certify: {stats:?}"
        );
    }

    #[test]
    fn corrupted_indices_are_caught_without_panicking() {
        let (nest, mut cg) = sample();
        // Point a compute at a nonexistent iteration.
        'outer: for ops in cg.program.per_proc.iter_mut() {
            for op in ops.iter_mut() {
                if let Op::Compute { point } = op {
                    *point = 10_000;
                    break 'outer;
                }
            }
        }
        let mut stats = AbsintStats::default();
        let diags = check_block_bounds(&nest, &cg, &mut stats);
        assert!(
            diags.iter().any(|d| d.to_json().render().contains("10000")),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_space_table_entry_is_an_error() {
        let (nest, mut cg) = sample();
        cg.program.points[0] = vec![999, 999];
        let mut stats = AbsintStats::default();
        let diags = check_block_bounds(&nest, &cg, &mut stats);
        assert!(!diags.is_empty());
        // And the pipeline wrapper skips the model checker gracefully.
        let report = crate::check_program(
            &nest,
            &cg,
            &crate::InterleaveOptions::default(),
            &Recorder::disabled(),
        );
        assert!(report.has_errors());
        assert!(report.render_human().contains("skipped"));
    }
}
