//! Baseline block→processor mappings for comparison against Algorithm 2.

use loom_obs::SplitMix64;

/// Contiguous ("naive") mapping: block `b` of `B` goes to processor
/// `⌊b·N/B⌋` — chunks of consecutive block ids per processor, ignoring
/// both geometry and Gray adjacency.
pub fn naive(num_blocks: usize, num_procs: usize) -> Vec<usize> {
    assert!(num_procs > 0);
    (0..num_blocks)
        .map(|b| b * num_procs / num_blocks.max(1))
        .collect()
}

/// Round-robin mapping: block `b` to processor `b mod N` — maximal
/// scatter, destroys all locality.
pub fn round_robin(num_blocks: usize, num_procs: usize) -> Vec<usize> {
    assert!(num_procs > 0);
    (0..num_blocks).map(|b| b % num_procs).collect()
}

/// A seeded random balanced mapping: a random permutation of the
/// round-robin assignment, so loads stay balanced but placement is
/// arbitrary. Deterministic for a given seed.
pub fn random(num_blocks: usize, num_procs: usize, seed: u64) -> Vec<usize> {
    let mut assignment = round_robin(num_blocks, num_procs);
    let mut rng = SplitMix64::new(seed);
    rng.shuffle(&mut assignment);
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_contiguous_and_balanced() {
        let a = naive(16, 4);
        assert_eq!(a[0], 0);
        assert_eq!(a[15], 3);
        for w in a.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        for p in 0..4 {
            assert_eq!(a.iter().filter(|&&x| x == p).count(), 4);
        }
    }

    #[test]
    fn naive_handles_uneven() {
        let a = naive(10, 4);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&p| p < 4));
        let counts: Vec<usize> = (0..4)
            .map(|p| a.iter().filter(|&&x| x == p).count())
            .collect();
        assert!(counts.iter().all(|&c| (2..=3).contains(&c)));
    }

    #[test]
    fn round_robin_cycles() {
        assert_eq!(round_robin(6, 3), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_deterministic_and_balanced() {
        let a = random(16, 4, 42);
        let b = random(16, 4, 42);
        assert_eq!(a, b);
        let c = random(16, 4, 43);
        assert_ne!(a, c, "different seeds should (virtually always) differ");
        for p in 0..4 {
            assert_eq!(a.iter().filter(|&&x| x == p).count(), 4);
        }
    }
}
